// Tests for the versioned schema repository: registration semantics,
// version bumping, drift reports, multi-source isolation, persistence
// round trips, and input validation.

#include <gtest/gtest.h>

#include <cstdio>

#include "inference/infer.h"
#include "json/parser.h"
#include "repository/schema_repository.h"
#include "types/type_parser.h"

namespace jsonsi::repository {
namespace {

types::TypeRef T(std::string_view text) {
  auto r = types::ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

TEST(RepositoryTest, FirstRegistrationCreatesVersionOne) {
  SchemaRepository repo;
  ASSERT_TRUE(repo.RegisterBatch("events", T("{a: Num}"), 100, "bootstrap")
                  .ok());
  const SchemaVersion* current = repo.Current("events");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version, 1u);
  EXPECT_EQ(current->cumulative_records, 100u);
  EXPECT_EQ(current->note, "bootstrap");
  EXPECT_TRUE(current->changes.empty());
  EXPECT_TRUE(current->schema->Equals(*T("{a: Num}")));
}

TEST(RepositoryTest, UnknownSourceIsNull) {
  SchemaRepository repo;
  EXPECT_EQ(repo.Current("nope"), nullptr);
  EXPECT_EQ(repo.History("nope"), nullptr);
  EXPECT_TRUE(repo.LatestDrift("nope").empty());
}

TEST(RepositoryTest, UnchangedSchemaDoesNotBumpVersion) {
  SchemaRepository repo;
  ASSERT_TRUE(repo.RegisterBatch("s", T("{a: Num}"), 10).ok());
  ASSERT_TRUE(repo.RegisterBatch("s", T("{a: Num}"), 15).ok());
  const SchemaVersion* current = repo.Current("s");
  EXPECT_EQ(current->version, 1u);
  EXPECT_EQ(current->cumulative_records, 25u);
  EXPECT_EQ(repo.History("s")->size(), 1u);
}

TEST(RepositoryTest, SubsumedBatchDoesNotBumpVersion) {
  // A batch whose schema is already included fuses to the same schema.
  SchemaRepository repo;
  ASSERT_TRUE(
      repo.RegisterBatch("s", T("{a: (Num + Str), b: Bool?}"), 10).ok());
  ASSERT_TRUE(repo.RegisterBatch("s", T("{a: Num, b: Bool}"), 5).ok());
  EXPECT_EQ(repo.Current("s")->version, 1u);
  EXPECT_EQ(repo.Current("s")->cumulative_records, 15u);
}

TEST(RepositoryTest, DriftBumpsVersionAndRecordsChanges) {
  SchemaRepository repo;
  ASSERT_TRUE(repo.RegisterBatch("s", T("{a: Num}"), 10).ok());
  ASSERT_TRUE(repo.RegisterBatch("s", T("{a: Str, extra: Bool}"), 5,
                                 "fw-2.0 rollout")
                  .ok());
  const SchemaVersion* current = repo.Current("s");
  EXPECT_EQ(current->version, 2u);
  EXPECT_EQ(current->cumulative_records, 15u);
  EXPECT_TRUE(current->schema->Equals(*T("{a: (Num + Str), extra: Bool?}")));
  auto drift = repo.LatestDrift("s");
  ASSERT_FALSE(drift.empty());
  bool saw_added = false, saw_broadened = false;
  for (const auto& c : drift) {
    saw_added |= (c.path == "extra" &&
                  c.kind == diff::ChangeKind::kFieldAdded);
    saw_broadened |= (c.path == "a" &&
                      c.kind == diff::ChangeKind::kKindsBroadened);
  }
  EXPECT_TRUE(saw_added);
  EXPECT_TRUE(saw_broadened);
}

TEST(RepositoryTest, SourcesAreIsolated) {
  SchemaRepository repo;
  ASSERT_TRUE(repo.RegisterBatch("alpha", T("{a: Num}"), 1).ok());
  ASSERT_TRUE(repo.RegisterBatch("beta", T("{b: Str}"), 2).ok());
  EXPECT_TRUE(repo.Current("alpha")->schema->Equals(*T("{a: Num}")));
  EXPECT_TRUE(repo.Current("beta")->schema->Equals(*T("{b: Str}")));
  EXPECT_EQ(repo.Sources(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(RepositoryTest, InputValidation) {
  SchemaRepository repo;
  EXPECT_FALSE(repo.RegisterBatch("", T("Num"), 1).ok());
  EXPECT_FALSE(repo.RegisterBatch("has space", T("Num"), 1).ok());
  EXPECT_FALSE(repo.RegisterBatch("s", T("Num"), 1, "multi\nline").ok());
  EXPECT_FALSE(repo.RegisterBatch("s", nullptr, 1).ok());
}

TEST(RepositoryTest, SerializeRoundTrip) {
  SchemaRepository repo;
  ASSERT_TRUE(repo.RegisterBatch("s", T("{a: Num}"), 10, "first").ok());
  ASSERT_TRUE(
      repo.RegisterBatch("s", T("{a: Null, tags: [(Str)*]}"), 5, "second")
          .ok());
  ASSERT_TRUE(repo.RegisterBatch("other", T("[Num, Str]"), 3).ok());

  auto loaded = SchemaRepository::Deserialize(repo.Serialize());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const SchemaRepository& back = loaded.value();
  EXPECT_EQ(back.Sources(), repo.Sources());
  ASSERT_NE(back.Current("s"), nullptr);
  EXPECT_EQ(back.Current("s")->version, 2u);
  EXPECT_EQ(back.Current("s")->cumulative_records, 15u);
  EXPECT_EQ(back.Current("s")->note, "second");
  EXPECT_TRUE(back.Current("s")->schema->Equals(*repo.Current("s")->schema));
  // Change lists are recomputed on load.
  EXPECT_EQ(back.LatestDrift("s").size(), repo.LatestDrift("s").size());
  EXPECT_TRUE(back.Current("other")->schema->Equals(*T("[Num, Str]")));
}

TEST(RepositoryTest, DeserializeErrors) {
  EXPECT_FALSE(SchemaRepository::Deserialize("").ok());
  EXPECT_FALSE(SchemaRepository::Deserialize("wrong header\n").ok());
  EXPECT_FALSE(SchemaRepository::Deserialize(
                   "jsonsi-schema-repository 1\ntype Num\n")
                   .ok());  // type before any version
  EXPECT_FALSE(SchemaRepository::Deserialize(
                   "jsonsi-schema-repository 1\nsource s\n"
                   "version 1 records 5 note x\ntype NOT_A_TYPE\n")
                   .ok());
  EXPECT_FALSE(SchemaRepository::Deserialize(
                   "jsonsi-schema-repository 1\nsource s\n"
                   "version 1 records 5 note \n")
                   .ok());  // missing type line
  EXPECT_FALSE(SchemaRepository::Deserialize(
                   "jsonsi-schema-repository 1\ngarbage line\n")
                   .ok());
}

TEST(RepositoryTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/jsonsi_repo_test.txt";
  SchemaRepository repo;
  ASSERT_TRUE(repo.RegisterBatch("s", T("{a: (Num + Str)?}"), 7).ok());
  ASSERT_TRUE(repo.SaveToFile(path).ok());
  auto loaded = SchemaRepository::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded.value().Current("s")->schema->Equals(
      *repo.Current("s")->schema));
  std::remove(path.c_str());
  EXPECT_FALSE(SchemaRepository::LoadFromFile("/no/such/repo.txt").ok());
}

TEST(RepositoryTest, EndToEndWithInference) {
  SchemaRepository repo;
  auto batch1 = json::Parse(R"({"id": 1, "name": "a"})").value();
  auto batch2 = json::Parse(R"({"id": 2, "name": "b", "tags": ["x"]})").value();
  ASSERT_TRUE(
      repo.RegisterBatch("api", inference::InferType(*batch1), 1).ok());
  ASSERT_TRUE(
      repo.RegisterBatch("api", inference::InferType(*batch2), 1).ok());
  EXPECT_EQ(repo.Current("api")->version, 2u);
  EXPECT_TRUE(repo.Current("api")->schema->Equals(
      *T("{id: Num, name: Str, tags: [Str]?}")));
}

}  // namespace
}  // namespace jsonsi::repository
