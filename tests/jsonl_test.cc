// Unit tests for JSON-Lines ingestion/emission.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "json/jsonl.h"
#include "json/serializer.h"

namespace jsonsi::json {
namespace {

TEST(JsonlTest, ParsesOneValuePerLine) {
  auto r = ParseJsonLines("{\"a\":1}\n{\"a\":2}\n[3]\n");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r.value().size(), 3u);
  EXPECT_TRUE(r.value()[2]->is_array());
}

TEST(JsonlTest, SkipsBlankLines) {
  auto r = ParseJsonLines("{\"a\":1}\n\n   \n{\"a\":2}\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(JsonlTest, NoTrailingNewlineOk) {
  auto r = ParseJsonLines("1\n2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(JsonlTest, ErrorCarriesLineNumber) {
  auto r = ParseJsonLines("{\"a\":1}\nnot json\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status();
}

TEST(JsonlTest, SinkCanStopEarly) {
  std::istringstream in("1\n2\n3\n4\n");
  int seen = 0;
  Status st = ReadJsonLines(in, [&](ValueRef) { return ++seen < 2; });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(seen, 2);
}

TEST(JsonlTest, ToJsonLinesRoundTrip) {
  auto r = ParseJsonLines("{\"x\":[1,2]}\n\"s\"\nnull\n");
  ASSERT_TRUE(r.ok());
  std::string text = ToJsonLines(r.value());
  auto r2 = ParseJsonLines(text);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2.value().size(), r.value().size());
  for (size_t i = 0; i < r.value().size(); ++i) {
    EXPECT_TRUE(r.value()[i]->Equals(*r2.value()[i]));
  }
}

TEST(JsonlTest, ReadsFromFile) {
  std::string path = ::testing::TempDir() + "/jsonsi_jsonl_test.jsonl";
  {
    std::ofstream out(path);
    out << "{\"k\":true}\n{\"k\":false}\n";
  }
  auto r = ReadJsonLinesFile(path);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().size(), 2u);
  std::remove(path.c_str());
}

TEST(JsonlTest, MissingFileIsNotFound) {
  auto r = ReadJsonLinesFile("/nonexistent/definitely_missing.jsonl");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------- dirty-input tolerance --------

TEST(JsonlTest, StripsWindowsLineEndings) {
  auto r = ParseJsonLines("{\"a\":1}\r\n{\"a\":2}\r\n[3]\r\n");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r.value().size(), 3u);
  EXPECT_TRUE(r.value()[2]->is_array());
  // Mixed endings and a final line without any newline also work.
  auto mixed = ParseJsonLines("1\r\n2\n3\r");
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  EXPECT_EQ(mixed.value().size(), 3u);
}

TEST(JsonlTest, CarriageReturnOnlyLineIsBlank) {
  auto r = ParseJsonLines("1\r\n\r\n2\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(JsonlTest, ToleratesUtf8BomOnFirstLine) {
  auto r = ParseJsonLines("\xEF\xBB\xBF{\"a\":1}\n{\"a\":2}\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(JsonlTest, BomOnLaterLineIsStillAnError) {
  auto r = ParseJsonLines("{\"a\":1}\n\xEF\xBB\xBF{\"a\":2}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(JsonlTest, BomCrlfAndBlankLinesViaStream) {
  std::istringstream in("\xEF\xBB\xBF{\"a\":1}\r\n\r\n{\"a\":2}\r\n");
  int seen = 0;
  Status st = ReadJsonLines(in, [&](ValueRef) {
    ++seen;
    return true;
  });
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(seen, 2);
}

TEST(JsonlTest, SkipPolicyCountsAndContinues) {
  IngestOptions options;
  options.on_malformed = MalformedLinePolicy::kSkip;
  IngestStats stats;
  auto r = ParseJsonLines("{\"a\":1}\nnot json\n\n{\"a\":2}\n{broken\n",
                          options, &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_EQ(stats.lines_read, 5u);
  EXPECT_EQ(stats.blank_lines, 1u);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.malformed_lines, 2u);
  ASSERT_EQ(stats.errors.size(), 2u);
  EXPECT_EQ(stats.errors[0].line_number, 2u);
  EXPECT_EQ(stats.errors[1].line_number, 5u);
  EXPECT_DOUBLE_EQ(stats.ErrorRate(), 0.5);
}

TEST(JsonlTest, ErrorByteOffsetsPointAtTheBadLines) {
  const std::string text = "{\"a\":1}\nbad\n{\"a\":2}\nworse\n";
  IngestOptions options;
  options.on_malformed = MalformedLinePolicy::kSkip;
  IngestStats stats;
  ASSERT_TRUE(ParseJsonLines(text, options, &stats).ok());
  ASSERT_EQ(stats.errors.size(), 2u);
  EXPECT_EQ(stats.errors[0].byte_offset, text.find("bad"));
  EXPECT_EQ(stats.errors[1].byte_offset, text.find("worse"));
  EXPECT_EQ(stats.bytes_read, text.size());
}

TEST(JsonlTest, RecordedErrorsAreCapped) {
  std::string text;
  for (int i = 0; i < 20; ++i) text += "nope\n";
  IngestOptions options;
  options.on_malformed = MalformedLinePolicy::kSkip;
  options.max_recorded_errors = 3;
  IngestStats stats;
  ASSERT_TRUE(ParseJsonLines(text, options, &stats).ok());
  EXPECT_EQ(stats.malformed_lines, 20u);
  EXPECT_EQ(stats.errors.size(), 3u);
}

TEST(JsonlTest, FailAboveRateToleratesSparseErrors) {
  std::string text;
  for (int i = 0; i < 99; ++i) text += "{\"a\":" + std::to_string(i) + "}\n";
  text += "garbage\n";
  IngestOptions options;
  options.on_malformed = MalformedLinePolicy::kFailAboveRate;
  options.max_error_rate = 0.05;
  options.min_lines_for_rate = 10;
  IngestStats stats;
  auto r = ParseJsonLines(text, options, &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().size(), 99u);
  EXPECT_EQ(stats.malformed_lines, 1u);
}

TEST(JsonlTest, FailAboveRateAbortsOnMostlyGarbage) {
  // A binary file passed by mistake: mostly unparseable. The read must not
  // silently "succeed" with a near-empty record set.
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += i % 2 ? "\x01\x02 binary junk\n" : "{\"a\":1}\n";
  }
  IngestOptions options;
  options.on_malformed = MalformedLinePolicy::kFailAboveRate;
  options.max_error_rate = 0.05;
  options.min_lines_for_rate = 10;
  IngestStats stats;
  auto r = ParseJsonLines(text, options, &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_GT(stats.malformed_lines, 0u);
}

TEST(JsonlTest, FailAboveRateChecksAgainAtEndOfInput) {
  // Too few lines to trigger the early check, but the final rate is over
  // budget: the end-of-input check must catch it.
  IngestOptions options;
  options.on_malformed = MalformedLinePolicy::kFailAboveRate;
  options.max_error_rate = 0.10;
  options.min_lines_for_rate = 100;
  auto r = ParseJsonLines("{\"a\":1}\nbad\n{\"a\":2}\n{\"a\":3}\n", options,
                          nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(JsonlTest, RateBaselineFoldsEarlierChunksIntoRateDecisions) {
  IngestOptions options;
  options.on_malformed = MalformedLinePolicy::kFailAboveRate;
  options.max_error_rate = 0.10;
  options.min_lines_for_rate = 4;

  // A healthy history: 50 clean records.
  IngestStats history;
  history.records = 50;
  history.lines_read = 50;

  // Locally this chunk is 50% garbage and would abort on its own; against
  // the 50-record baseline the cumulative rate is 1/52 and the read passes.
  options.rate_baseline = &history;
  IngestStats chunk;
  auto r = ParseJsonLines("bad\n{\"a\":1}\n", options, &chunk);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(chunk.malformed_lines, 1u);

  // The same chunk with no baseline trips the end-of-input rate check.
  options.rate_baseline = nullptr;
  auto strict = ParseJsonLines("bad\n{\"a\":1}\n", options, nullptr);
  ASSERT_FALSE(strict.ok());

  // A baseline already at the edge makes one more bad line fatal, and the
  // diagnostic reports the cumulative stream, not the chunk.
  IngestStats dirty_history;
  dirty_history.records = 45;
  dirty_history.malformed_lines = 5;  // exactly 10% of 50
  options.rate_baseline = &dirty_history;
  auto over = ParseJsonLines("bad\n", options, nullptr);
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.status().message().find("6/51"), std::string::npos)
      << over.status();
}

TEST(JsonlTest, StreamAndStringViewReadersAgreeOnStats) {
  const std::string text =
      "\xEF\xBB\xBF{\"a\":1}\r\nbad\n\n{\"a\":2}\nalso bad\n{\"a\":3}\r\n";
  IngestOptions options;
  options.on_malformed = MalformedLinePolicy::kSkip;

  IngestStats via_view;
  int view_records = 0;
  ASSERT_TRUE(ReadJsonLines(std::string_view(text),
                            [&](ValueRef) {
                              ++view_records;
                              return true;
                            },
                            options, &via_view)
                  .ok());

  std::istringstream in(text);
  IngestStats via_stream;
  int stream_records = 0;
  ASSERT_TRUE(ReadJsonLines(in,
                            [&](ValueRef) {
                              ++stream_records;
                              return true;
                            },
                            options, &via_stream)
                  .ok());

  EXPECT_EQ(view_records, stream_records);
  EXPECT_EQ(via_view.lines_read, via_stream.lines_read);
  EXPECT_EQ(via_view.blank_lines, via_stream.blank_lines);
  EXPECT_EQ(via_view.records, via_stream.records);
  EXPECT_EQ(via_view.malformed_lines, via_stream.malformed_lines);
  ASSERT_EQ(via_view.errors.size(), via_stream.errors.size());
  for (size_t i = 0; i < via_view.errors.size(); ++i) {
    EXPECT_EQ(via_view.errors[i].line_number, via_stream.errors[i].line_number);
    EXPECT_EQ(via_view.errors[i].byte_offset, via_stream.errors[i].byte_offset);
  }
}

TEST(JsonlTest, AbsorbShiftsLineNumbersAndOffsets) {
  IngestOptions options;
  options.on_malformed = MalformedLinePolicy::kSkip;
  IngestStats first, second;
  ASSERT_TRUE(ParseJsonLines("{\"a\":1}\n{\"a\":2}\n", options, &first).ok());
  ASSERT_TRUE(ParseJsonLines("oops\n{\"a\":3}\n", options, &second).ok());
  first.Absorb(second, options.max_recorded_errors);
  EXPECT_EQ(first.lines_read, 4u);
  EXPECT_EQ(first.records, 3u);
  EXPECT_EQ(first.malformed_lines, 1u);
  ASSERT_EQ(first.errors.size(), 1u);
  // "oops" was line 1 of the second chunk = line 3 of the logical stream,
  // starting right after the first chunk's 16 bytes.
  EXPECT_EQ(first.errors[0].line_number, 3u);
  EXPECT_EQ(first.errors[0].byte_offset, 16u);
}

TEST(JsonlTest, LargeInputZeroCopyParse) {
  // A bulk input exercising the string_view slicing path: enough lines that
  // a per-line copy regression would be visible in test time, plus dirt.
  std::string text;
  text.reserve(2u << 20);
  const size_t kLines = 50000;
  for (size_t i = 0; i < kLines; ++i) {
    text += "{\"id\":" + std::to_string(i) + ",\"tag\":\"x\"}";
    text += (i % 3 == 0) ? "\r\n" : "\n";
    if (i % 1000 == 999) text += "truncated{\n";
  }
  IngestOptions options;
  options.on_malformed = MalformedLinePolicy::kSkip;
  IngestStats stats;
  auto r = ParseJsonLines(text, options, &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().size(), kLines);
  EXPECT_EQ(stats.records, kLines);
  EXPECT_EQ(stats.malformed_lines, kLines / 1000);
  EXPECT_EQ(stats.bytes_read, text.size());
}

TEST(JsonlTest, BytesConsumedEqualsBytesReadOnSuccess) {
  const std::string text = "{\"a\":1}\n\n{\"b\":2}\r\n{\"c\":3}";
  IngestOptions options;
  IngestStats stats;
  ASSERT_TRUE(ParseJsonLines(text, options, &stats).ok());
  EXPECT_EQ(stats.bytes_consumed, stats.bytes_read);
  EXPECT_EQ(stats.bytes_consumed, text.size());
}

TEST(JsonlTest, BytesConsumedStopsAtAbortingLine) {
  // kFail aborts on line 3: consumed covers lines 1-2 only, while
  // bytes_read includes the scanned (aborting) line — the gap is exactly
  // what a resumed read must revisit.
  const std::string text = "{\"a\":1}\n{\"b\":2}\nbad line\n{\"c\":3}\n";
  const size_t bad_at = text.find("bad");
  IngestOptions options;
  IngestStats stats;
  auto r = ParseJsonLines(text, options, &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(stats.bytes_consumed, bad_at);
  EXPECT_GT(stats.bytes_read, stats.bytes_consumed);

  // Resuming at bytes_consumed re-reads the bad line first, nothing else.
  IngestStats resumed;
  options.on_malformed = MalformedLinePolicy::kSkip;
  auto rest = ParseJsonLines(std::string_view(text).substr(bad_at), options,
                             &resumed);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest.value().size(), 1u);
  EXPECT_EQ(resumed.malformed_lines, 1u);
}

TEST(JsonlTest, BytesConsumedAdvancesPastSkippedLines) {
  IngestOptions options;
  options.on_malformed = MalformedLinePolicy::kSkip;
  IngestStats stats;
  const std::string text = "{\"a\":1}\nbad\n{\"b\":2}\n";
  ASSERT_TRUE(ParseJsonLines(text, options, &stats).ok());
  // Skipped lines are fully processed: nothing to revisit on resume.
  EXPECT_EQ(stats.bytes_consumed, text.size());
}

TEST(JsonlTest, AbsorbRebasesBytesConsumed) {
  IngestOptions options;
  IngestStats first;
  ASSERT_TRUE(ParseJsonLines("{\"a\":1}\n", options, &first).ok());
  IngestStats second;
  ASSERT_TRUE(ParseJsonLines("{\"b\":22}\n", options, &second).ok());
  first.Absorb(second, options.max_recorded_errors);
  EXPECT_EQ(first.bytes_consumed, first.bytes_read);
  EXPECT_EQ(first.bytes_consumed, 8u + 9u);

  // An empty follow-up read must not move the resume offset.
  IngestStats empty;
  ASSERT_TRUE(ParseJsonLines("", options, &empty).ok());
  first.Absorb(empty, options.max_recorded_errors);
  EXPECT_EQ(first.bytes_consumed, 8u + 9u);
}

TEST(JsonlTest, MaxDocumentBytesRejectsOversizeLinesUnderPolicy) {
  IngestOptions options;
  options.parse.max_document_bytes = 16;
  options.on_malformed = MalformedLinePolicy::kSkip;
  IngestStats stats;
  const std::string text =
      "{\"a\":1}\n{\"key\":\"a long oversize line\"}\n{\"b\":2}\n";
  auto r = ParseJsonLines(text, options, &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_EQ(stats.malformed_lines, 1u);
  ASSERT_FALSE(stats.errors.empty());
  EXPECT_NE(stats.errors[0].message.find("exceeds limit"),
            std::string::npos);
}

}  // namespace
}  // namespace jsonsi::json
