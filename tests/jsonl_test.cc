// Unit tests for JSON-Lines ingestion/emission.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "json/jsonl.h"
#include "json/serializer.h"

namespace jsonsi::json {
namespace {

TEST(JsonlTest, ParsesOneValuePerLine) {
  auto r = ParseJsonLines("{\"a\":1}\n{\"a\":2}\n[3]\n");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r.value().size(), 3u);
  EXPECT_TRUE(r.value()[2]->is_array());
}

TEST(JsonlTest, SkipsBlankLines) {
  auto r = ParseJsonLines("{\"a\":1}\n\n   \n{\"a\":2}\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(JsonlTest, NoTrailingNewlineOk) {
  auto r = ParseJsonLines("1\n2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(JsonlTest, ErrorCarriesLineNumber) {
  auto r = ParseJsonLines("{\"a\":1}\nnot json\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status();
}

TEST(JsonlTest, SinkCanStopEarly) {
  std::istringstream in("1\n2\n3\n4\n");
  int seen = 0;
  Status st = ReadJsonLines(in, [&](ValueRef) { return ++seen < 2; });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(seen, 2);
}

TEST(JsonlTest, ToJsonLinesRoundTrip) {
  auto r = ParseJsonLines("{\"x\":[1,2]}\n\"s\"\nnull\n");
  ASSERT_TRUE(r.ok());
  std::string text = ToJsonLines(r.value());
  auto r2 = ParseJsonLines(text);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2.value().size(), r.value().size());
  for (size_t i = 0; i < r.value().size(); ++i) {
    EXPECT_TRUE(r.value()[i]->Equals(*r2.value()[i]));
  }
}

TEST(JsonlTest, ReadsFromFile) {
  std::string path = ::testing::TempDir() + "/jsonsi_jsonl_test.jsonl";
  {
    std::ofstream out(path);
    out << "{\"k\":true}\n{\"k\":false}\n";
  }
  auto r = ReadJsonLinesFile(path);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().size(), 2u);
  std::remove(path.c_str());
}

TEST(JsonlTest, MissingFileIsNotFound) {
  auto r = ReadJsonLinesFile("/nonexistent/definitely_missing.jsonl");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace jsonsi::json
