// Robustness suite for the JSON parser: mutation fuzzing (never crash,
// always a clean ok/error outcome), pathological inputs, numeric precision,
// and boundary conditions that unit tests tend to miss.

#include <gtest/gtest.h>

#include <string>

#include "json/parser.h"
#include "json/serializer.h"
#include "random_value_gen.h"
#include "support/rng.h"

namespace jsonsi::json {
namespace {

// Byte-level mutations over valid documents: the parser must return either
// a value or an error — and never crash, hang, or accept trailing garbage.
class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, MutatedDocumentsNeverCrash) {
  Rng rng(GetParam());
  std::string doc = ToJson(*jsonsi::testing::RandomValue(GetParam() + 5000));
  for (int round = 0; round < 200; ++round) {
    std::string mutated = doc;
    size_t mutations = 1 + rng.Below(4);
    for (size_t m = 0; m < mutations && !mutated.empty(); ++m) {
      size_t pos = rng.Below(mutated.size());
      switch (rng.Below(4)) {
        case 0:  // flip to random printable byte
          mutated[pos] = static_cast<char>(32 + rng.Below(95));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        case 2:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
          break;
        default:  // inject a structural character
          mutated[pos] = "{}[],:\"\\"[rng.Below(8)];
      }
    }
    Result<ValueRef> r = Parse(mutated);
    if (r.ok()) {
      // Accepted documents must round-trip deterministically.
      Result<ValueRef> again = Parse(ToJson(*r.value()));
      ASSERT_TRUE(again.ok());
      ASSERT_TRUE(r.value()->Equals(*again.value()));
    } else {
      ASSERT_FALSE(r.status().message().empty());
    }
  }
}

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam() + 999);
  for (int round = 0; round < 100; ++round) {
    std::string garbage;
    size_t len = rng.Below(64);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Below(256)));
    }
    Result<ValueRef> r = Parse(garbage);
    // Either outcome is fine; no crash, no UB (checked under the sanitizers
    // of the full CI run).
    if (!r.ok()) {
      ASSERT_FALSE(r.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<uint64_t>(0, 8));

// ------------------------------------------------------------ pathologies --

TEST(ParserRobustnessTest, ManySiblingsParseFine) {
  std::string doc = "{";
  for (int i = 0; i < 5000; ++i) {
    if (i) doc += ",";
    doc += "\"k" + std::to_string(i) + "\":" + std::to_string(i);
  }
  doc += "}";
  Result<ValueRef> r = Parse(doc);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value()->fields().size(), 5000u);
}

TEST(ParserRobustnessTest, LongStringsRoundTrip) {
  std::string payload(100000, 'x');
  payload[50000] = '"';  // force escaping in the middle
  ValueRef v = Value::Str(payload);
  Result<ValueRef> r = Parse(ToJson(*v));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->str_value(), payload);
}

TEST(ParserRobustnessTest, UnbalancedBracketsFailCleanly) {
  for (const char* doc : {"[[[", "}}}", "[{]}", "{\"a\":[}", "[1,2},3]"}) {
    EXPECT_FALSE(Parse(doc).ok()) << doc;
  }
}

TEST(ParserRobustnessTest, NumbersAtPrecisionBoundaries) {
  // 2^53 and neighbours: exact integer precision limits of doubles.
  EXPECT_DOUBLE_EQ(Parse("9007199254740992").value()->num_value(),
                   9007199254740992.0);
  EXPECT_DOUBLE_EQ(Parse("-9007199254740992").value()->num_value(),
                   -9007199254740992.0);
  // Denormal-range and tiny exponents parse without error.
  EXPECT_TRUE(Parse("1e-300").ok());
  EXPECT_TRUE(Parse("2.2250738585072014e-308").ok());
}

TEST(ParserRobustnessTest, NumberRoundTripsPreserveValue) {
  const double cases[] = {0.1,       1.0 / 3.0, 1e20,  -2.5e-7,
                          123456.75, 1e15 + 1,  0.0,   -0.0};
  for (double d : cases) {
    Result<ValueRef> r = Parse(ToJson(*Value::Num(d)));
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r.value()->num_value(), d);
  }
}

TEST(ParserRobustnessTest, WhitespaceEverywhere) {
  Result<ValueRef> r = Parse(" \t\r\n { \"a\" : [ 1 , \n 2 ] } \r\n ");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value()->Find("a")->elements().size(), 2u);
}

TEST(ParserRobustnessTest, Utf8PassThrough) {
  // Raw (unescaped) multi-byte UTF-8 in strings and keys passes through.
  Result<ValueRef> r = Parse("{\"caf\xc3\xa9\": \"na\xc3\xafve\"}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r.value()->Find("caf\xc3\xa9"), nullptr);
}

TEST(ParserRobustnessTest, EmptyAndBlankInputs) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("   \n\t ").ok());
}

TEST(ParserRobustnessTest, DepthLimitExactBoundary) {
  ParseOptions opts;
  opts.max_depth = 32;
  std::string at_limit, over_limit;
  for (int i = 0; i < 32; ++i) at_limit += "[";
  at_limit += "1";
  for (int i = 0; i < 32; ++i) at_limit += "]";
  over_limit = "[" + at_limit + "]";
  EXPECT_TRUE(Parse(at_limit, opts).ok());
  EXPECT_FALSE(Parse(over_limit, opts).ok());
}

}  // namespace
}  // namespace jsonsi::json
