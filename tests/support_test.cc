// Unit tests for the support substrate: Status/Result, hashing, RNG
// determinism and distributions, string utilities.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "support/hash.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/string_util.h"

namespace jsonsi {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("too big");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// ------------------------------------------------------------------ Hash --

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_EQ(Mix64(0), 0u);  // SplitMix64's finalizer fixes zero
  EXPECT_NE(Mix64(1), 1u);
}

TEST(HashTest, HashCombineOrderMatters) {
  uint64_t a = Mix64(123), b = Mix64(456);
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
}

TEST(HashTest, HashBytesDistinguishesStrings) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(17);
  int rank0 = 0, rank_high = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t r = rng.Zipf(100, 1.1);
    EXPECT_LT(r, 100u);
    if (r == 0) ++rank0;
    if (r >= 50) ++rank_high;
  }
  EXPECT_GT(rank0, rank_high);  // head much heavier than the whole tail half
}

TEST(RngTest, IdentHasRequestedLengthAndAlphabet) {
  Rng rng(19);
  std::string s = rng.Ident(12);
  EXPECT_EQ(s.size(), 12u);
  for (char c : s) EXPECT_TRUE(c >= 'a' && c <= 'z');
}

TEST(RngTest, WordsHasRequestedWordCount) {
  Rng rng(23);
  std::string s = rng.Words(5);
  int spaces = 0;
  for (char c : s) spaces += (c == ' ');
  EXPECT_EQ(spaces, 4);
}

// ----------------------------------------------------------- StringUtil --

TEST(StringUtilTest, JsonEscaping) {
  std::string out;
  AppendJsonEscaped("a\"b\\c\n\t\x01", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t\\u0001");
}

TEST(StringUtilTest, FormatJsonNumberIntegral) {
  EXPECT_EQ(FormatJsonNumber(0), "0");
  EXPECT_EQ(FormatJsonNumber(42), "42");
  EXPECT_EQ(FormatJsonNumber(-17), "-17");
  EXPECT_EQ(FormatJsonNumber(1e15), "1000000000000000");
}

TEST(StringUtilTest, FormatJsonNumberFractional) {
  EXPECT_EQ(FormatJsonNumber(1.5), "1.5");
  EXPECT_EQ(FormatJsonNumber(-0.25), "-0.25");
}

TEST(StringUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(-1234567), "-1,234,567");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(14000000), "14MB");
  EXPECT_EQ(HumanBytes(1300000000), "1.3GB");
  EXPECT_EQ(HumanBytes(2200000000ULL), "2.2GB");
}

TEST(StringUtilTest, Split) {
  auto pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

}  // namespace
}  // namespace jsonsi
