// Tests for the fusion operator against the paper's own worked examples
// (Sections 2 and 5.2) plus rule-by-rule coverage of Figure 6.

#include <gtest/gtest.h>

#include "fusion/fuse.h"
#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "types/printer.h"
#include "types/type_parser.h"

namespace jsonsi::fusion {
namespace {

using types::ParseType;
using types::ToString;
using types::Type;
using types::TypeRef;

TypeRef T(std::string_view text) {
  auto r = ParseType(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return r.ok() ? r.value() : Type::Empty();
}

void ExpectFuse(std::string_view a, std::string_view b,
                std::string_view expected) {
  TypeRef result = Fuse(T(a), T(b));
  TypeRef want = T(expected);
  EXPECT_TRUE(result->Equals(*want))
      << "Fuse(" << a << ", " << b << ") = " << ToString(*result)
      << ", expected " << expected;
}

// -------------------------------------------------- paper worked examples --

TEST(FuseTest, SectionTwoRecordExample) {
  // T1 = {A: Str, B: Num}, T2 = {B: Bool, C: Str}
  // T12 = {A: Str?, B: Num + Bool, C: Str?}
  ExpectFuse("{A: Str, B: Num}", "{B: Bool, C: Str}",
             "{A: Str?, B: (Num + Bool), C: Str?}");
}

TEST(FuseTest, SectionTwoOptionalityPrevails) {
  // T12 fused with T3 = {A: Null, B: Num} gives
  // T123 = {A: (Str + Null)?, B: Num + Bool, C: Str?}
  ExpectFuse("{A: Str?, B: (Num + Bool), C: Str?}", "{A: Null, B: Num}",
             "{A: (Str + Null)?, B: (Num + Bool), C: Str?}");
}

TEST(FuseTest, SectionTwoNestedUnionExample) {
  // {l: Bool + Str + {A: Num}} fused with {l: {A: Str, B: Num}} yields
  // {l: Bool + Str + {A: Num + Str, B: Num?}}   (record components merge)
  ExpectFuse("{l: (Bool + Str + {A: Num})}", "{l: {A: Str, B: Num}}",
             "{l: (Bool + Str + {A: (Num + Str), B: Num?})}");
}

TEST(FuseTest, SectionTwoMixedContentArrays) {
  // [Str, Str, {E: Str, F: Num}] and the swapped order both simplify and
  // fuse to [(Str + {E: Str, F: Num})*].
  ExpectFuse("[Str, Str, {E: Str, F: Num}]", "[{E: Str, F: Num}, Str, Str]",
             "[(Str + {E: Str, F: Num})*]");
}

TEST(FuseTest, SectionFiveCollapseExample) {
  // T = [Num, Bool, Num, {l1: Num, l2: Str}, {l1: Num, l2: Bool, l3: Str}]
  // collapse(T) = Num + Bool + {l1: Num, l2: Str + Bool, l3: Str?}
  TypeRef t = T("[Num, Bool, Num, {l1: Num, l2: Str},"
                " {l1: Num, l2: Bool, l3: Str}]");
  TypeRef collapsed = Collapse(t);
  TypeRef want = T("Num + Bool + {l1: Num, l2: (Str + Bool), l3: Str?}");
  EXPECT_TRUE(collapsed->Equals(*want)) << ToString(*collapsed);
}

// ------------------------------------------------------- rule-level cases --

TEST(FuseTest, IdenticalBasicsCollapse) {
  ExpectFuse("Num", "Num", "Num");
  ExpectFuse("Null", "Null", "Null");
}

TEST(FuseTest, DifferentKindsUnion) {
  ExpectFuse("Num", "Str", "Num + Str");
  ExpectFuse("Null", "Bool", "Null + Bool");
  ExpectFuse("Num", "{a: Str}", "Num + {a: Str}");
}

TEST(FuseTest, UnionsFuseKindWise) {
  // Matching kinds fuse, unmatched pass through (KMatch/KUnmatch).
  ExpectFuse("Num + Str", "Str + Bool", "Num + Str + Bool");
  ExpectFuse("Num + {a: Num}", "{b: Str} + Bool",
             "Num + Bool + {a: Num?, b: Str?}");
}

TEST(FuseTest, EmptyIsIdentity) {
  TypeRef t = T("{a: (Num + Str)}");
  EXPECT_TRUE(Fuse(Type::Empty(), t)->Equals(*t));
  EXPECT_TRUE(Fuse(t, Type::Empty())->Equals(*t));
  EXPECT_TRUE(Fuse(Type::Empty(), Type::Empty())->is_empty());
}

TEST(FuseTest, RecordFieldCardinalities) {
  // mandatory+mandatory = mandatory; any '?' prevails.
  ExpectFuse("{k: Num}", "{k: Num}", "{k: Num}");
  ExpectFuse("{k: Num?}", "{k: Num}", "{k: Num?}");
  ExpectFuse("{k: Num?}", "{k: Num?}", "{k: Num?}");
}

TEST(FuseTest, EmptyRecordMakesAllFieldsOptional) {
  ExpectFuse("{}", "{a: Num, b: Str}", "{a: Num?, b: Str?}");
}

TEST(FuseTest, ArrayExactPairCollapses) {
  // Line 4: LFuse(AT1, AT2) = [Fuse(collapse(AT1), collapse(AT2))*]
  ExpectFuse("[Num, Num]", "[Str]", "[(Num + Str)*]");
}

TEST(FuseTest, StarWithExact) {
  // Lines 5/6: one side already simplified.
  ExpectFuse("[(Num)*]", "[Str, Str]", "[(Num + Str)*]");
  ExpectFuse("[Bool]", "[(Str)*]", "[(Bool + Str)*]");
}

TEST(FuseTest, StarWithStar) {
  // Line 7.
  ExpectFuse("[(Num)*]", "[(Str)*]", "[(Num + Str)*]");
}

TEST(FuseTest, EmptyArraysCollapseToEpsStar) {
  // collapse(EArrT) = eps; [] + [] -> [(Empty)*], still only matching [].
  ExpectFuse("[]", "[]", "[(Empty)*]");
  ExpectFuse("[]", "[Num]", "[(Num)*]");
  ExpectFuse("[(Empty)*]", "[]", "[(Empty)*]");
}

TEST(FuseTest, CollapseOfEmptyArrayIsEps) {
  EXPECT_TRUE(Collapse(Type::ArrayExact({}))->is_empty());
}

TEST(FuseTest, NestedArraysOfRecords) {
  ExpectFuse("[{a: Num}, {b: Str}]", "[{a: Bool}]",
             "[({a: (Num + Bool)?, b: Str?})*]");
}

TEST(FuseTest, FuseAllFoldsLeftToRight) {
  std::vector<TypeRef> ts = {T("{a: Num}"), T("{b: Str}"), T("{a: Str}")};
  TypeRef fused = FuseAll(ts);
  TypeRef want = T("{a: (Num + Str)?, b: Str?}");
  EXPECT_TRUE(fused->Equals(*want)) << ToString(*fused);
  EXPECT_TRUE(FuseAll({})->is_empty());
}

TEST(FuseTest, FusedTypeNeverLargerThanSumPlusOverhead) {
  // Succinctness sanity: |Fuse(T1,T2)| <= |T1| + |T2| + 1 (union node).
  const char* pairs[][2] = {
      {"{a: Num, b: Str}", "{b: Bool, c: Str}"},
      {"[Num, Num, Num]", "[Str]"},
      {"Num + Str", "Bool + Null"},
      {"{x: [Num, Str]}", "{x: [(Bool)*]}"},
  };
  for (auto& p : pairs) {
    TypeRef a = T(p[0]), b = T(p[1]);
    TypeRef f = Fuse(a, b);
    EXPECT_LE(f->size(), a->size() + b->size() + 1)
        << p[0] << " + " << p[1] << " -> " << ToString(*f);
  }
}

TEST(TreeFuserTest, EmptyYieldsEps) {
  TreeFuser fuser;
  EXPECT_TRUE(fuser.Finish()->is_empty());
  EXPECT_EQ(fuser.count(), 0u);
}

TEST(TreeFuserTest, MatchesLeftFoldForAnyCount) {
  // Associativity makes tree order and fold order interchangeable; verify
  // across counts that hit every binary-counter carry pattern.
  for (size_t n : {1u, 2u, 3u, 4u, 7u, 8u, 9u, 31u, 64u, 100u}) {
    std::vector<TypeRef> ts;
    for (size_t i = 0; i < n; ++i) {
      ts.push_back(T(i % 3 == 0 ? "{a: Num, b: [Num, Str]}"
                     : i % 3 == 1 ? "{a: Str, c: Bool}"
                                  : "{b: [(Bool)*], d: Null}"));
    }
    TreeFuser fuser;
    for (const TypeRef& t : ts) fuser.Add(t);
    EXPECT_EQ(fuser.count(), n);
    EXPECT_TRUE(fuser.Finish()->Equals(*FuseAll(ts))) << n;
  }
}

TEST(TreeFuserTest, FinishIsIdempotentAndResumable) {
  TreeFuser fuser;
  fuser.Add(T("{a: Num}"));
  fuser.Add(T("{b: Str}"));
  TypeRef first = fuser.Finish();
  EXPECT_TRUE(fuser.Finish()->Equals(*first));
  fuser.Add(T("{c: Bool}"));
  EXPECT_TRUE(fuser.Finish()->Equals(
      *FuseAll({T("{a: Num}"), T("{b: Str}"), T("{c: Bool}")})));
}

TEST(FuseTest, EndToEndFromValues) {
  // Parse -> infer -> fuse matches hand computation.
  auto v1 = json::Parse(R"({"a": 1, "tags": ["x", "y"]})");
  auto v2 = json::Parse(R"({"a": "one", "extra": true, "tags": []})");
  ASSERT_TRUE(v1.ok() && v2.ok());
  TypeRef fused = Fuse(inference::InferType(*v1.value()),
                       inference::InferType(*v2.value()));
  TypeRef want = T("{a: (Num + Str), extra: Bool?, tags: [(Str)*]}");
  EXPECT_TRUE(fused->Equals(*want)) << ToString(*fused);
}

}  // namespace
}  // namespace jsonsi::fusion
