// Tests for the statistics layer: distinct-type sets, size stats, path
// enumeration over values and types, coverage, and the completeness claim
// (every value path is traversable in the fused type).

#include <gtest/gtest.h>

#include "fusion/fuse.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "random_value_gen.h"
#include "stats/paths.h"
#include "stats/type_stats.h"
#include "types/type_parser.h"

namespace jsonsi::stats {
namespace {

json::ValueRef V(std::string_view text) {
  auto r = json::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

types::TypeRef T(std::string_view text) {
  auto r = types::ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

// ------------------------------------------------------ DistinctTypeSet --

TEST(DistinctTypeSetTest, DeduplicatesStructurally) {
  DistinctTypeSet set;
  EXPECT_TRUE(set.Add(T("{a: Num}")));
  EXPECT_FALSE(set.Add(T("{a: Num}")));  // same structure, fresh object
  EXPECT_TRUE(set.Add(T("{a: Str}")));
  EXPECT_EQ(set.size(), 2u);
}

TEST(DistinctTypeSetTest, MergeUnionsSets) {
  DistinctTypeSet a, b;
  a.Add(T("Num"));
  a.Add(T("Str"));
  b.Add(T("Str"));
  b.Add(T("Bool"));
  a.Merge(b);
  EXPECT_EQ(a.size(), 3u);
}

TEST(DistinctTypeSetTest, ToVectorHasAllMembers) {
  DistinctTypeSet set;
  set.Add(T("Num"));
  set.Add(T("[Num]"));
  EXPECT_EQ(set.ToVector().size(), 2u);
}

// ------------------------------------------------------------ SizeStats --

TEST(SizeStatsTest, EmptyInput) {
  SizeStats s = ComputeSizeStats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.avg, 0.0);
}

TEST(SizeStatsTest, MinMaxAvg) {
  // sizes: Num=1, {a: Num}=3, [Num, Str]=3
  SizeStats s = ComputeSizeStats({T("Num"), T("{a: Num}"), T("[Num, Str]")});
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 3u);
  EXPECT_NEAR(s.avg, 7.0 / 3.0, 1e-12);
}

// ---------------------------------------------------------------- paths --

TEST(PathsTest, ValuePaths) {
  auto paths = ValuePaths(*V(R"({"a": 1, "b": {"c": [ {"d": 2} ]}})"));
  EXPECT_TRUE(paths.count("a"));
  EXPECT_TRUE(paths.count("b"));
  EXPECT_TRUE(paths.count("b.c"));
  EXPECT_TRUE(paths.count("b.c[]"));
  EXPECT_TRUE(paths.count("b.c[].d"));
  EXPECT_EQ(paths.size(), 5u);
}

TEST(PathsTest, EmptyArrayContributesNoElementPath) {
  auto paths = ValuePaths(*V(R"({"a": []})"));
  EXPECT_TRUE(paths.count("a"));
  EXPECT_FALSE(paths.count("a[]"));
}

TEST(PathsTest, TypePathsIncludeOptionalAndUnionBranches) {
  auto paths = TypePaths(*T("{a: Num?, b: (Str + {c: Num})}"));
  EXPECT_TRUE(paths.count("a"));
  EXPECT_TRUE(paths.count("b"));
  EXPECT_TRUE(paths.count("b.c"));  // via the union's record branch
}

TEST(PathsTest, TypePathsThroughArrays) {
  auto star = TypePaths(*T("{xs: [({v: Num})*]}"));
  EXPECT_TRUE(star.count("xs[]"));
  EXPECT_TRUE(star.count("xs[].v"));
  auto exact = TypePaths(*T("{xs: [Num, {v: Str}]}"));
  EXPECT_TRUE(exact.count("xs[]"));
  EXPECT_TRUE(exact.count("xs[].v"));
  // [Empty*] denotes only [] — no element path.
  auto empty = TypePaths(*T("{xs: [(Empty)*]}"));
  EXPECT_TRUE(empty.count("xs"));
  EXPECT_FALSE(empty.count("xs[]"));
}

TEST(PathCounterTest, CountsPathOncePerRecord) {
  PathCounter counter;
  counter.Add(*V(R"({"a": [1, 2, 3]})"));  // a[] appears once despite 3 elems
  counter.Add(*V(R"({"a": [], "b": 1})"));
  EXPECT_EQ(counter.total(), 2u);
  EXPECT_EQ(counter.counts().at("a"), 2u);
  EXPECT_EQ(counter.counts().at("a[]"), 1u);
  EXPECT_EQ(counter.counts().at("b"), 1u);
}

TEST(CoverageTest, Fractions) {
  std::set<std::string> required = {"a", "b", "c", "d"};
  std::set<std::string> provided = {"a", "b", "x"};
  EXPECT_DOUBLE_EQ(Coverage(required, provided), 0.5);
  EXPECT_DOUBLE_EQ(Coverage({}, provided), 1.0);
  EXPECT_DOUBLE_EQ(Coverage(required, required), 1.0);
}

// --------------------------------------- the paper's completeness claim --

TEST(CompletenessTest, EveryValuePathTraversableInFusedSchema) {
  // Section 1: "each path that can be traversed in ... each input JSON value
  // can be traversed in the inferred schema as well."
  auto values = jsonsi::testing::RandomValues(99, 60);
  types::TypeRef fused = types::Type::Empty();
  for (const auto& v : values) {
    fused = fusion::Fuse(fused, inference::InferType(*v));
  }
  std::set<std::string> schema_paths = TypePaths(*fused);
  for (const auto& v : values) {
    for (const std::string& p : ValuePaths(*v)) {
      EXPECT_TRUE(schema_paths.count(p)) << "missing path " << p;
    }
  }
}

}  // namespace
}  // namespace jsonsi::stats
