// Differential parity suite for the SIMD structural-index front-end
// (json/simd/). The contract under test: every kernel is observationally
// identical to the scalar SWAR path — byte-identical Status codes and
// messages (hence error positions), identical token streams (kind, text,
// offset, line, column), identical inferred types, identical IngestStats
// (including bytes_consumed, the checkpoint resume offset) through every
// malformed-line policy, and bit-identical classification planes.
//
// The gallery leans on the structural edge cases vector kernels get wrong
// when they are wrong: constructs straddling 64-byte block boundaries at
// every offset, escaped-quote runs whose backslash carry crosses blocks,
// UTF-8 continuation bytes (signed-compare bugs), NUL and control bytes,
// and truncations that cut a document mid-construct.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/schema_inferencer.h"
#include "inference/direct_infer.h"
#include "inference/infer.h"
#include "json/jsonl.h"
#include "json/parser.h"
#include "json/simd/kernel.h"
#include "json/simd/structural.h"
#include "json/tokenizer.h"
#include "types/printer.h"
#include "types/type.h"

namespace jsonsi {
namespace {

using core::InferenceOptions;
using core::SchemaInferencer;
using inference::DirectInferType;
using json::MalformedLinePolicy;
using json::simd::ActiveKernel;
using json::simd::AvailableKernels;
using json::simd::Kernel;
using json::simd::KernelAvailable;
using json::simd::KernelName;
using json::simd::OpsFor;
using json::simd::SetKernel;
using json::simd::StructuralIndex;

// Pins the process-wide kernel for one scope; restores on exit so test
// order never leaks a forced kernel into later tests.
class ScopedKernel {
 public:
  explicit ScopedKernel(Kernel k) : saved_(ActiveKernel()) { SetKernel(k); }
  ~ScopedKernel() { SetKernel(saved_); }
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;

 private:
  Kernel saved_;
};

std::vector<Kernel> VectorKernels() {
  std::vector<Kernel> out;
  for (Kernel k : AvailableKernels()) {
    if (k != Kernel::kScalar) out.push_back(k);
  }
  return out;
}

// The ctest log banner: which kernel auto-dispatch picked on this host and
// which kernels this run actually exercised (CI greps for this line).
TEST(SimdParityTest, Banner) {
  std::string names;
  for (Kernel k : AvailableKernels()) {
    if (!names.empty()) names += ", ";
    names += KernelName(k);
  }
  std::cout << "[ SIMD ] active kernel: " << KernelName(ActiveKernel())
            << "; available: " << names << std::endl;
}

// ---------------------------------------------------------------------------
// Layer 0: raw classification. Every kernel's per-byte classifier must be
// bit-identical to scalar over the full byte alphabet — this is the test
// that catches a wrong pshufb table entry or a signed-compare slip.

TEST(SimdParityTest, ClassifyAll256ByteValues) {
  char blocks[4][64];
  for (int b = 0; b < 4; ++b) {
    for (int i = 0; i < 64; ++i) {
      blocks[b][i] = static_cast<char>(b * 64 + i);
    }
  }
  const auto& scalar = OpsFor(Kernel::kScalar);
  for (Kernel k : VectorKernels()) {
    const auto& ops = OpsFor(k);
    for (int b = 0; b < 4; ++b) {
      json::simd::BlockMasks want, got;
      scalar.classify(blocks[b], &want);
      ops.classify(blocks[b], &got);
      SCOPED_TRACE(std::string(KernelName(k)) + " bytes " +
                   std::to_string(b * 64) + ".." + std::to_string(b * 64 + 63));
      EXPECT_EQ(want.ws, got.ws);
      EXPECT_EQ(want.nl, got.nl);
      EXPECT_EQ(want.digit, got.digit);
      EXPECT_EQ(want.quote, got.quote);
      EXPECT_EQ(want.backslash, got.backslash);
      EXPECT_EQ(want.control, got.control);
      EXPECT_EQ(want.punct, got.punct);
    }
  }
}

// Reversed byte order shifts every value to a different lane — catches
// lane-order mistakes the ascending pattern can't.
TEST(SimdParityTest, ClassifyAll256ByteValuesReversed) {
  char blocks[4][64];
  for (int b = 0; b < 4; ++b) {
    for (int i = 0; i < 64; ++i) {
      blocks[b][i] = static_cast<char>(255 - (b * 64 + i));
    }
  }
  const auto& scalar = OpsFor(Kernel::kScalar);
  for (Kernel k : VectorKernels()) {
    const auto& ops = OpsFor(k);
    for (int b = 0; b < 4; ++b) {
      json::simd::BlockMasks want, got;
      scalar.classify(blocks[b], &want);
      ops.classify(blocks[b], &got);
      SCOPED_TRACE(std::string(KernelName(k)) + " block " + std::to_string(b));
      EXPECT_EQ(want.ws, got.ws);
      EXPECT_EQ(want.nl, got.nl);
      EXPECT_EQ(want.digit, got.digit);
      EXPECT_EQ(want.quote, got.quote);
      EXPECT_EQ(want.backslash, got.backslash);
      EXPECT_EQ(want.control, got.control);
      EXPECT_EQ(want.punct, got.punct);
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 1: whole-index plane equality. Build the five planes with each
// kernel and require them word-for-word identical — carries and the padded
// tail block included.

void ExpectPlanesEqual(std::string_view text) {
  StructuralIndex base;
  base.Build(text, Kernel::kScalar);
  for (Kernel k : VectorKernels()) {
    StructuralIndex index;
    index.Build(text, k);
    ASSERT_EQ(base.words(), index.words());
    for (size_t w = 0; w < base.words(); ++w) {
      SCOPED_TRACE(std::string(KernelName(k)) + " word " + std::to_string(w) +
                   " of: " + std::string(text.substr(0, 80)));
      EXPECT_EQ(base.nonws_plane()[w], index.nonws_plane()[w]);
      EXPECT_EQ(base.newline_plane()[w], index.newline_plane()[w]);
      EXPECT_EQ(base.digit_plane()[w], index.digit_plane()[w]);
      EXPECT_EQ(base.stop_plane()[w], index.stop_plane()[w]);
      EXPECT_EQ(base.structural_plane()[w], index.structural_plane()[w]);
    }
    EXPECT_EQ(base.StructuralCount(), index.StructuralCount());
  }
}

TEST(SimdParityTest, PlaneEqualityStructuralEdgeCases) {
  const std::string sixty = std::string(60, 'x');
  for (const std::string& text : {
           std::string(R"({"a":1,"b":[true,null],"c":"text"})"),
           // Quote exactly at a block boundary.
           "\"" + std::string(63, 'a') + "\"tail",
           // Escaped quote whose backslash is byte 63, quote byte 64.
           "\"" + sixty + "xx\\\"more\"",
           // Odd backslash run crossing the boundary.
           "\"" + std::string(61, 'a') + "\\\\\\\"end\"",
           // Even backslash run crossing the boundary.
           "\"" + std::string(62, 'a') + "\\\\\"after",
           // A string spanning three full blocks.
           "\"" + std::string(170, 'b') + "\"",
           // Unterminated string: in-string carry stays set to the end.
           "\"" + std::string(100, 'c'),
           // Structural characters inside and outside strings.
           R"(["{\"}", {"]": "[,:"}])" + std::string(64, ' ') + "[]",
           // NUL and control bytes, inside and outside a string.
           std::string("\"ab\0cd\"\0[1]", 11),
           std::string(64, '\0'),
           // UTF-8 multi-byte content (continuation bytes >= 0x80).
           "\"héllo \xF0\x9F\x98\x80 wörld" + std::string(60, 'x') + "\"",
           std::string("\x80\xFF\xC0 [1, 2]"),
           // Whitespace soup with newlines at odd offsets.
           "\n \t\r\n" + std::string(61, ' ') + "\n[1,\n2]\n",
           // Digits crossing the boundary.
           std::string(63, ' ') + std::string(40, '7'),
       }) {
    ExpectPlanesEqual(text);
  }
}

// Every construct placed at every offset 0..63 of its first block, so each
// class of scan (string run, escape pair, digit run, \u escape) crosses a
// block boundary at every possible alignment.
TEST(SimdParityTest, PlaneEqualityBoundaryStraddleSweep) {
  const std::string cores[] = {
      "\"" + std::string(90, 's') + "\"",
      "\"" + std::string(30, 'a') + "\\\"" + std::string(40, 'b') + "\"",
      "\"\\\\\\\\\\\"" + std::string(70, 'q') + "\"",
      std::string(80, '9'),
      R"("\u0041\u00e9\ud83d\ude00")" + std::string(48, 'k'),
      "\"" + std::string(70, 'u'),  // unterminated
  };
  for (size_t offset = 0; offset < 64; ++offset) {
    for (const std::string& core : cores) {
      ExpectPlanesEqual(std::string(offset, ' ') + core);
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 2: token-stream identity. The full pull-tokenizer output — kinds,
// lexeme slices, offsets, lines, columns, and the terminating status — must
// match scalar exactly under every kernel.

struct TokenRecord {
  json::TokenKind kind;
  std::string text;
  size_t offset, line, column;
  bool operator==(const TokenRecord& o) const {
    return kind == o.kind && text == o.text && offset == o.offset &&
           line == o.line && column == o.column;
  }
};

struct TokenTrace {
  std::vector<TokenRecord> tokens;
  std::string unescaped;
  Status status = Status::OK();
};

TokenTrace Tokenize(std::string_view text) {
  TokenTrace trace;
  json::Tokenizer tok(text);
  json::Token t;
  do {
    trace.status = tok.Next(&t, &trace.unescaped);
    if (!trace.status.ok()) break;
    trace.tokens.push_back(
        {t.kind, std::string(t.text), t.offset, t.line, t.column});
  } while (t.kind != json::TokenKind::kEnd);
  return trace;
}

TEST(SimdParityTest, TokenStreamIdentity) {
  const std::string docs[] = {
      R"({"key": [1, -2.5e3, true, false, null], "s": "a\nb\u0041"})",
      "[\n  1,\n  \"" + std::string(200, 'x') + "\",\n  {\"a\": 3}\n]",
      std::string(64, ' ') + "\"multi\\\"escape\\\\run\"",
      "\"" + std::string(63, 'a') + "\\\"" + std::string(63, 'b') + "\"",
      "[1 2]",            // error after a bulk skip
      "\"unterminated " + std::string(80, 'z'),
      "{\"a\":1,}\n\n[3]",
      std::string(100, '1') + "e4",
  };
  for (const std::string& doc : docs) {
    TokenTrace base;
    {
      ScopedKernel pin(Kernel::kScalar);
      base = Tokenize(doc);
    }
    for (Kernel k : VectorKernels()) {
      ScopedKernel pin(k);
      TokenTrace got = Tokenize(doc);
      SCOPED_TRACE(std::string(KernelName(k)) + " on: " + doc.substr(0, 80));
      EXPECT_EQ(base.status, got.status);
      EXPECT_EQ(base.unescaped, got.unescaped);
      ASSERT_EQ(base.tokens.size(), got.tokens.size());
      for (size_t i = 0; i < base.tokens.size(); ++i) {
        EXPECT_TRUE(base.tokens[i] == got.tokens[i])
            << "token " << i << " diverged (offset " << base.tokens[i].offset
            << " vs " << got.tokens[i].offset << ")";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 3: end-to-end inference parity. DirectInferType under each kernel
// vs scalar, and vs the DOM pipeline: same types, same Status byte-for-byte.

void ExpectInferParity(std::string_view text) {
  Result<types::TypeRef> base = [&] {
    ScopedKernel pin(Kernel::kScalar);
    return DirectInferType(text);
  }();
  // Scalar direct vs the DOM pipeline (the PR-7 contract, re-checked here
  // because the kernels are compared against scalar transitively).
  auto parsed = json::Parse(text);
  ASSERT_EQ(base.ok(), parsed.ok()) << "on: " << text;
  if (!base.ok()) {
    EXPECT_EQ(base.status(), parsed.status()) << "on: " << text;
  }
  for (Kernel k : VectorKernels()) {
    ScopedKernel pin(k);
    auto got = DirectInferType(text);
    SCOPED_TRACE(std::string(KernelName(k)) + " on: " +
                 std::string(text.substr(0, 80)));
    ASSERT_EQ(base.ok(), got.ok());
    if (base.ok()) {
      EXPECT_TRUE(types::TypeEquals(base.value(), got.value()))
          << "  scalar: " << types::ToString(*base.value())
          << "\n  kernel: " << types::ToString(*got.value());
    } else {
      EXPECT_EQ(base.status(), got.status());
    }
  }
}

TEST(SimdParityTest, AdversarialGallery) {
  const std::string pad64 = std::string(64, ' ');
  const std::vector<std::string> gallery = {
           // Valid documents big enough to be indexed.
           pad64 + R"({"a":[1,2,3],"b":{"c":"d"},"e":null})",
           "[" + std::string(40, '1') + "," + std::string(40, '2') + "]",
           R"({"esc":"a\nb\t\"c\"\\d\/e\u0041\uD83D\uDE00"})" + pad64,
           // Malformed, with the error after at least one block.
           pad64 + "[1 2]",
           pad64 + "{\"a\":}",
           pad64 + "\"tail never closes",
           "\"" + std::string(70, 'a') + "\n\"",  // raw newline in string
           "\"" + std::string(70, 'a') + "\\q\"",  // bad escape far in
           pad64 + "01",
           pad64 + "1e",
           pad64 + "{\"a\":1,\"a\":2}",
           pad64 + "[1,2",
           pad64 + "{} {}",
           pad64,  // all whitespace
           // Short docs (unindexed) for completeness.
           "nul", "[", "{\"a\"}", "",
           // Raw UTF-8 and control bytes.
           pad64 + "\"caf\xC3\xA9 \xE2\x82\xAC\"",
           pad64 + std::string("\"nul\0byte\"", 10),
           std::string("\x80\x81\x82", 3) + pad64,
  };
  for (const std::string& text : gallery) {
    ExpectInferParity(text);
  }
}

TEST(SimdParityTest, TruncationSweep) {
  const std::string doc =
      R"({"a":[1,2.5,null],"esc":"a\"b\\c","nested":{"k":[true,false],)"
      R"("s":"xyzzy"},"num":-12.75e2,"tail":"padpadpadpadpadpadpadpad"})";
  ASSERT_GT(doc.size(), 64u) << "sweep must cross a block boundary";
  for (size_t len = 0; len <= doc.size(); ++len) {
    ExpectInferParity(std::string_view(doc).substr(0, len));
  }
}

TEST(SimdParityTest, BoundaryStraddleInference) {
  const std::string cores[] = {
      "\"" + std::string(90, 's') + "\"",
      "[" + std::string(70, '7') + "]",
      R"({"k":"\u00e9\ud83d\ude00)" + std::string(60, 'v') + "\"}",
      "\"" + std::string(50, 'a') + "\\\"" + std::string(50, 'b') + "\"",
      "\"" + std::string(70, 'u'),  // unterminated
      "[true," + std::string(60, ' ') + "false]",
  };
  for (size_t offset = 0; offset < 64; ++offset) {
    for (const std::string& core : cores) {
      ExpectInferParity(std::string(offset, ' ') + core);
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 4: degraded-mode ingestion. The policy x rate grid through
// SchemaInferencer must yield identical Status, schema, and IngestStats —
// bytes_consumed included, because a kernel that mis-scans newlines would
// corrupt checkpoint resume offsets long before it corrupts a type.

void ExpectStatsEqual(const json::IngestStats& want,
                      const json::IngestStats& got) {
  EXPECT_EQ(want.lines_read, got.lines_read);
  EXPECT_EQ(want.blank_lines, got.blank_lines);
  EXPECT_EQ(want.records, got.records);
  EXPECT_EQ(want.malformed_lines, got.malformed_lines);
  EXPECT_EQ(want.bytes_read, got.bytes_read);
  EXPECT_EQ(want.bytes_consumed, got.bytes_consumed);
  ASSERT_EQ(want.errors.size(), got.errors.size());
  for (size_t i = 0; i < want.errors.size(); ++i) {
    EXPECT_EQ(want.errors[i].line_number, got.errors[i].line_number);
    EXPECT_EQ(want.errors[i].byte_offset, got.errors[i].byte_offset);
    EXPECT_EQ(want.errors[i].message, got.errors[i].message);
  }
}

std::string MixedCorpus() {
  std::string corpus;
  for (int i = 0; i < 40; ++i) {
    corpus += R"({"id":)" + std::to_string(i) + R"(,"name":")" +
              std::string(80 + i, 'n') + "\"}\n";
    if (i % 8 == 3) corpus += "{\"broken\": " + std::string(70, 'x') + "\n";
    if (i % 10 == 7) corpus += "\n";  // blank line
  }
  return corpus;
}

TEST(SimdParityTest, PolicyRateGridStatsParity) {
  const std::string corpus = MixedCorpus();
  struct Config {
    MalformedLinePolicy policy;
    double rate;
  };
  const Config grid[] = {
      {MalformedLinePolicy::kFail, 0.0},
      {MalformedLinePolicy::kSkip, 0.0},
      {MalformedLinePolicy::kFailAboveRate, 0.05},
      {MalformedLinePolicy::kFailAboveRate, 0.5},
  };
  for (const Config& config : grid) {
    for (size_t threads : {size_t{1}, size_t{2}}) {
      InferenceOptions options;
      options.ingest.on_malformed = config.policy;
      options.ingest.max_error_rate = config.rate;
      options.ingest.min_lines_for_rate = 4;
      options.num_threads = threads;
      options.parallel_ingest_min_bytes = 0;
      SchemaInferencer inferencer(options);

      json::IngestStats base_stats;
      Result<core::Schema> base = [&] {
        ScopedKernel pin(Kernel::kScalar);
        return inferencer.InferFromJsonLines(corpus, &base_stats);
      }();
      for (Kernel k : VectorKernels()) {
        ScopedKernel pin(k);
        json::IngestStats stats;
        auto got = inferencer.InferFromJsonLines(corpus, &stats);
        SCOPED_TRACE(std::string(KernelName(k)) + " policy " +
                     std::to_string(static_cast<int>(config.policy)) +
                     " rate " + std::to_string(config.rate) + " threads " +
                     std::to_string(threads));
        ASSERT_EQ(base.ok(), got.ok());
        if (base.ok()) {
          EXPECT_TRUE(
              types::TypeEquals(base.value().type, got.value().type));
          EXPECT_EQ(base.value().stats.record_count,
                    got.value().stats.record_count);
        } else {
          EXPECT_EQ(base.status(), got.status());
        }
        ExpectStatsEqual(base_stats, stats);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 5: dispatch. Forcing, fallback, env override, and the FindNewline /
// ShouldIndex entry points the chunk splitter depends on.

TEST(SimdDispatchTest, ForceKernelByName) {
  ScopedKernel restore(ActiveKernel());
  for (Kernel k : AvailableKernels()) {
    ASSERT_TRUE(json::simd::ForceKernel(KernelName(k)).ok());
    EXPECT_EQ(ActiveKernel(), k);
  }
  ASSERT_TRUE(json::simd::ForceKernel("auto").ok());
  EXPECT_EQ(ActiveKernel(), json::simd::DetectBestKernel());
}

TEST(SimdDispatchTest, UnknownKernelNameRejected) {
  const Kernel before = ActiveKernel();
  ScopedKernel restore(before);
  Status status = json::simd::ForceKernel("avx1024");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown SIMD kernel"), std::string::npos)
      << status.message();
  // A rejected force must leave the active kernel untouched.
  EXPECT_EQ(ActiveKernel(), before);
}

TEST(SimdDispatchTest, UnavailableKernelFallsBackToScalar) {
  ScopedKernel restore(ActiveKernel());
  // Pick an ISA this host cannot have: NEON on x86, AVX2 on ARM. At least
  // one of the two is always foreign.
  Kernel foreign =
      KernelAvailable(Kernel::kNEON) ? Kernel::kAVX2 : Kernel::kNEON;
  ASSERT_FALSE(KernelAvailable(foreign));
  SetKernel(foreign);  // must not crash, must not select the foreign ISA
  EXPECT_EQ(ActiveKernel(), Kernel::kScalar);
  // ForceKernel with the same name: OK (deployment configs keep working),
  // scalar selected, warning on stderr.
  ASSERT_TRUE(json::simd::ForceKernel(KernelName(foreign)).ok());
  EXPECT_EQ(ActiveKernel(), Kernel::kScalar);
}

class EnvKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prior = std::getenv("JSI_FORCE_KERNEL");
    if (prior != nullptr) saved_env_ = prior;
    had_env_ = prior != nullptr;
    saved_kernel_ = ActiveKernel();
  }
  void TearDown() override {
    if (had_env_) {
      setenv("JSI_FORCE_KERNEL", saved_env_.c_str(), 1);
    } else {
      unsetenv("JSI_FORCE_KERNEL");
    }
    json::simd::ResetKernelForTesting();
    SetKernel(saved_kernel_);
  }
  std::string saved_env_;
  bool had_env_ = false;
  Kernel saved_kernel_ = Kernel::kScalar;
};

TEST_F(EnvKernelTest, EnvForcesKernel) {
  for (Kernel k : AvailableKernels()) {
    setenv("JSI_FORCE_KERNEL", KernelName(k), 1);
    json::simd::ResetKernelForTesting();
    EXPECT_EQ(ActiveKernel(), k) << KernelName(k);
  }
}

TEST_F(EnvKernelTest, UnknownEnvValueFallsBackToDetection) {
  setenv("JSI_FORCE_KERNEL", "quantum9000", 1);
  json::simd::ResetKernelForTesting();
  EXPECT_EQ(ActiveKernel(), json::simd::DetectBestKernel());
}

TEST(SimdDispatchTest, ShouldIndexPolicy) {
  {
    ScopedKernel pin(Kernel::kScalar);
    EXPECT_FALSE(json::simd::ShouldIndex(1 << 20))
        << "scalar runs must never build an index";
  }
  for (Kernel k : VectorKernels()) {
    ScopedKernel pin(k);
    EXPECT_FALSE(json::simd::ShouldIndex(63));
    EXPECT_TRUE(json::simd::ShouldIndex(64));
  }
}

TEST(SimdDispatchTest, TokenizerIndexGating) {
  const std::string doc = "[" + std::string(100, '1') + "]";
  {
    ScopedKernel pin(Kernel::kScalar);
    json::Tokenizer tok(doc);
    EXPECT_EQ(tok.index(), nullptr);
  }
  for (Kernel k : VectorKernels()) {
    ScopedKernel pin(k);
    json::Tokenizer tok(doc);
    ASSERT_NE(tok.index(), nullptr);
    EXPECT_EQ(tok.index()->kernel(), k);
    json::Tokenizer small(std::string_view(doc).substr(0, 10));
    EXPECT_EQ(small.index(), nullptr);
  }
}

TEST(SimdDispatchTest, FindNewlineParity) {
  std::string text;
  for (int i = 0; i < 10; ++i) {
    text += std::string(static_cast<size_t>(i * 13 + 1), 'x');
    text += '\n';
  }
  text += std::string(50, 'y');  // no trailing newline
  for (Kernel k : AvailableKernels()) {
    ScopedKernel pin(k);
    for (size_t from = 0; from <= text.size(); from += 7) {
      size_t want = text.find('\n', from);
      if (want == std::string::npos) want = text.size();
      EXPECT_EQ(json::simd::FindNewline(text, from), want)
          << KernelName(k) << " from " << from;
    }
    EXPECT_EQ(json::simd::FindNewline(text, text.size()), text.size());
    EXPECT_EQ(json::simd::FindNewline("", 0), 0u);
  }
}

}  // namespace
}  // namespace jsonsi
