// Property-based suites for the fusion theorems of Section 5.2, checked over
// randomly generated values/types (parameterized by seed):
//
//   Theorem 5.2 (correctness):   V in [[T]]  =>  V in [[Fuse(T, U)]]
//   Theorem 5.4 (commutativity): Fuse(T, U) == Fuse(U, T)
//   Theorem 5.5 (associativity): Fuse(Fuse(T,U),W) == Fuse(T,Fuse(U,W))
//   normal-form invariant:       Fuse of normal types is normal
//   idempotence:                 Fuse(T, T) == T (on fused/normal types)
//   plus fold-order independence over whole collections.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "engine/cluster_sim.h"
#include "fusion/fuse.h"
#include "inference/infer.h"
#include "random_value_gen.h"
#include "types/membership.h"
#include "types/printer.h"

namespace jsonsi::fusion {
namespace {

using json::ValueRef;
using types::IsNormal;
using types::Matches;
using types::ToString;
using types::Type;
using types::TypeRef;

// Random *normal* types are obtained the way the system produces them: by
// inferring from random values and optionally pre-fusing a few, which also
// covers unions, optional fields, and starred arrays.
std::vector<TypeRef> RandomNormalTypes(uint64_t seed, size_t count) {
  auto values =
      jsonsi::testing::RandomValues(seed, count * 2);
  std::vector<TypeRef> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    TypeRef t = inference::InferType(*values[2 * i]);
    if (i % 2 == 1) {
      // Every other sample is itself a fusion result, so the properties are
      // exercised on union/starred types too.
      t = Fuse(t, inference::InferType(*values[2 * i + 1]));
    }
    out.push_back(t);
  }
  return out;
}

class FusionProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FusionProperties, Commutativity) {
  auto ts = RandomNormalTypes(GetParam(), 12);
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = 0; j < ts.size(); ++j) {
      TypeRef ab = Fuse(ts[i], ts[j]);
      TypeRef ba = Fuse(ts[j], ts[i]);
      ASSERT_TRUE(ab->Equals(*ba))
          << "seed=" << GetParam() << "\n a=" << ToString(*ts[i])
          << "\n b=" << ToString(*ts[j]) << "\n ab=" << ToString(*ab)
          << "\n ba=" << ToString(*ba);
    }
  }
}

TEST_P(FusionProperties, Associativity) {
  auto ts = RandomNormalTypes(GetParam() + 1000, 8);
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = 0; j < ts.size(); ++j) {
      for (size_t k = 0; k < ts.size(); k += 3) {
        TypeRef left = Fuse(Fuse(ts[i], ts[j]), ts[k]);
        TypeRef right = Fuse(ts[i], Fuse(ts[j], ts[k]));
        ASSERT_TRUE(left->Equals(*right))
            << "seed=" << GetParam() << "\n a=" << ToString(*ts[i])
            << "\n b=" << ToString(*ts[j]) << "\n c=" << ToString(*ts[k])
            << "\n (ab)c=" << ToString(*left)
            << "\n a(bc)=" << ToString(*right);
      }
    }
  }
}

TEST_P(FusionProperties, CorrectnessMembershipPreserved) {
  // For sampled values: once a value's inferred type enters a fusion, the
  // value stays a member of every further fusion result (Thm 5.2 iterated).
  auto values = jsonsi::testing::RandomValues(GetParam() + 2000, 20);
  std::vector<TypeRef> types;
  types.reserve(values.size());
  for (const ValueRef& v : values) {
    types.push_back(inference::InferType(*v));
  }
  TypeRef fused = FuseAll(types);
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(Matches(*values[i], *fused))
        << "seed=" << GetParam() << " value#" << i
        << " fused=" << ToString(*fused);
  }
}

TEST_P(FusionProperties, PairwiseCorrectnessBothSides) {
  auto values = jsonsi::testing::RandomValues(GetParam() + 3000, 10);
  for (size_t i = 0; i + 1 < values.size(); i += 2) {
    TypeRef ta = inference::InferType(*values[i]);
    TypeRef tb = inference::InferType(*values[i + 1]);
    TypeRef f = Fuse(ta, tb);
    ASSERT_TRUE(Matches(*values[i], *f)) << ToString(*f);
    ASSERT_TRUE(Matches(*values[i + 1], *f)) << ToString(*f);
  }
}

TEST_P(FusionProperties, NormalityPreserved) {
  auto ts = RandomNormalTypes(GetParam() + 4000, 10);
  for (const TypeRef& t : ts) ASSERT_TRUE(IsNormal(t)) << ToString(*t);
  TypeRef acc = Type::Empty();
  for (const TypeRef& t : ts) {
    acc = Fuse(acc, t);
    ASSERT_TRUE(IsNormal(acc)) << "seed=" << GetParam()
                               << " acc=" << ToString(*acc);
  }
}

TEST_P(FusionProperties, SelfFusionStabilizesAndAbsorbs) {
  // Fuse is NOT idempotent on types that still carry exact array types:
  // Figure 6 line 4 turns every matched exact array into its starred
  // simplification, so Fuse(T, T) may differ from T. One self-fusion
  // star-normalizes every reachable array, after which fusion is a join:
  // idempotent and absorbing.
  auto ts = RandomNormalTypes(GetParam() + 5000, 10);
  TypeRef fused = FuseAll(ts);
  TypeRef stable = Fuse(fused, fused);
  ASSERT_TRUE(Fuse(stable, stable)->Equals(*stable)) << ToString(*stable);
  // Absorption: every input is already included in the stabilized schema.
  for (const TypeRef& t : ts) {
    ASSERT_TRUE(Fuse(stable, t)->Equals(*stable))
        << "seed=" << GetParam() << "\n t=" << ToString(*t)
        << "\n stable=" << ToString(*stable);
  }
}

TEST_P(FusionProperties, FoldOrderIrrelevant) {
  auto ts = RandomNormalTypes(GetParam() + 6000, 9);
  // Left fold.
  TypeRef left = FuseAll(ts);
  // Right fold.
  TypeRef right = Type::Empty();
  for (auto it = ts.rbegin(); it != ts.rend(); ++it) {
    right = Fuse(*it, right);
  }
  // Balanced tree fold.
  std::vector<TypeRef> layer = ts;
  while (layer.size() > 1) {
    std::vector<TypeRef> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(Fuse(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  TypeRef tree = layer.empty() ? Type::Empty() : layer.front();
  ASSERT_TRUE(left->Equals(*right));
  ASSERT_TRUE(left->Equals(*tree));
}

TEST_P(FusionProperties, FusedSizeBounded) {
  // Succinctness direction of the design: the fused type is never larger
  // than the concatenation of inputs (it collapses shared structure).
  auto ts = RandomNormalTypes(GetParam() + 7000, 10);
  size_t total = 0;
  for (const TypeRef& t : ts) total += t->size();
  TypeRef fused = FuseAll(ts);
  EXPECT_LE(fused->size(), total + ts.size());  // + union-node slack
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionProperties,
                         ::testing::Range<uint64_t>(0, 20));

// The correctness anchor of fault-tolerant execution: whatever failure and
// retry schedule the cluster suffers, the fused schema equals the
// failure-free one — because a re-executed map task *recomputes* its partial
// schema exactly (inference is pure), and partials fuse to the same result
// in any completion order (Theorems 5.4/5.5). Note the at-most-once caveat:
// each partial is delivered exactly once. Duplicated delivery would NOT be
// safe — Fuse is not idempotent on types with exact array types (see
// SelfFusionStabilizesAndAbsorbs above).
class RetryReplayProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RetryReplayProperty, FusedSchemaUnchangedByFailuresAndRetries) {
  using engine::ClusterConfig;
  using engine::FaultSchedule;
  using engine::NodeCrash;
  using engine::Placement;
  using engine::RecoveryPolicy;

  const uint64_t seed = GetParam();
  const size_t kPartitions = 8;
  auto values = jsonsi::testing::RandomValues(seed + 8000, 64);
  const size_t per_part = values.size() / kPartitions;

  // One inference pass over a partition, from scratch — what a (re)launched
  // map task does.
  auto compute_partial = [&](size_t part) {
    TypeRef acc = Type::Empty();
    for (size_t i = part * per_part; i < (part + 1) * per_part; ++i) {
      acc = Fuse(acc, inference::InferType(*values[i]));
    }
    return acc;
  };

  // Failure-free run: every partial computed once, fused in task order.
  TypeRef baseline = Type::Empty();
  for (size_t p = 0; p < kPartitions; ++p) {
    baseline = Fuse(baseline, compute_partial(p));
  }

  // Crash, straggler, and corrupt-partition schedules, simulated to obtain
  // realistic completion (= delivery) orders under retries.
  std::vector<FaultSchedule> schedules(3);
  schedules[0].crashes = {NodeCrash{0, 0.2, 0.5}, NodeCrash{3, 0.1, 1.0}};
  schedules[1].straggler_factor = {1.0, 5.0, 1.0, 1.0, 3.0};
  schedules[2].corrupt_tasks = {1, 6};
  schedules[2].corrupt_attempt_failures = 2;

  for (size_t which = 0; which < schedules.size(); ++which) {
    RecoveryPolicy policy;
    policy.seed = seed;
    policy.max_attempts_per_task = 6;
    auto tasks = engine::MakeSpreadTasks(kPartitions, 16.0, 1e9, 6, 256);
    auto sim = engine::SimulateJob(tasks, ClusterConfig{},
                                   Placement::kLocalOnly, 0.0,
                                   schedules[which], policy);
    ASSERT_TRUE(sim.completed) << "schedule " << which << " seed " << seed;

    // Partials re-enter the reduce in completion order; retried tasks
    // recompute their partial from scratch. Each task delivers exactly once.
    std::vector<size_t> order(kPartitions);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return sim.task_finish_seconds[a] < sim.task_finish_seconds[b];
    });

    TypeRef replayed = Type::Empty();
    for (size_t task : order) {
      replayed = Fuse(replayed, compute_partial(task));  // recomputation
    }
    ASSERT_TRUE(replayed->Equals(*baseline))
        << "schedule " << which << " seed " << seed
        << "\n baseline=" << ToString(*baseline)
        << "\n replayed=" << ToString(*replayed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetryReplayProperty,
                         ::testing::Values<uint64_t>(11, 12, 13));

}  // namespace
}  // namespace jsonsi::fusion
