// Property-based suites for the fusion theorems of Section 5.2, checked over
// randomly generated values/types (parameterized by seed):
//
//   Theorem 5.2 (correctness):   V in [[T]]  =>  V in [[Fuse(T, U)]]
//   Theorem 5.4 (commutativity): Fuse(T, U) == Fuse(U, T)
//   Theorem 5.5 (associativity): Fuse(Fuse(T,U),W) == Fuse(T,Fuse(U,W))
//   normal-form invariant:       Fuse of normal types is normal
//   idempotence:                 Fuse(T, T) == T (on fused/normal types)
//   plus fold-order independence over whole collections.
//
// Every law runs in TWO modes (testing::Combine): against the plain
// Figure 5/6 operator with all acceleration off, and against the default
// hash-consed + memoized operator. A memo bug (stale entry, bad key
// normalization, options aliasing) that broke any theorem would fail the
// kMemoized leg while kPlain stays green, pinpointing the cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

#include "engine/cluster_sim.h"
#include "fusion/fuse.h"
#include "inference/infer.h"
#include "random_value_gen.h"
#include "types/interner.h"
#include "types/membership.h"
#include "types/printer.h"

namespace jsonsi::fusion {
namespace {

using json::ValueRef;
using types::IsNormal;
using types::Matches;
using types::ToString;
using types::Type;
using types::TypeRef;

enum class FuseMode { kPlain, kMemoized };

const char* ModeName(FuseMode mode) {
  return mode == FuseMode::kPlain ? "plain" : "memoized";
}

Fuser MakeFuser(FuseMode mode) {
  FuseOptions opts;
  if (mode == FuseMode::kPlain) {
    opts.intern = false;
    opts.memoize = false;
    opts.dedup = false;
  }
  return Fuser(opts);
}

// Random *normal* types are obtained the way the system produces them: by
// inferring from random values and optionally pre-fusing a few, which also
// covers unions, optional fields, and starred arrays.
std::vector<TypeRef> RandomNormalTypes(const Fuser& fuser, uint64_t seed,
                                       size_t count) {
  auto values =
      jsonsi::testing::RandomValues(seed, count * 2);
  std::vector<TypeRef> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    TypeRef t = inference::InferType(*values[2 * i]);
    if (i % 2 == 1) {
      // Every other sample is itself a fusion result, so the properties are
      // exercised on union/starred types too.
      t = fuser.Fuse(t, inference::InferType(*values[2 * i + 1]));
    }
    out.push_back(t);
  }
  return out;
}

class FusionProperties
    : public ::testing::TestWithParam<std::tuple<uint64_t, FuseMode>> {
 protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  FuseMode mode() const { return std::get<1>(GetParam()); }
  Fuser fuser() const { return MakeFuser(mode()); }
};

TEST_P(FusionProperties, Commutativity) {
  const Fuser f = fuser();
  auto ts = RandomNormalTypes(f, seed(), 12);
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = 0; j < ts.size(); ++j) {
      TypeRef ab = f.Fuse(ts[i], ts[j]);
      TypeRef ba = f.Fuse(ts[j], ts[i]);
      ASSERT_TRUE(ab->Equals(*ba))
          << "seed=" << seed() << " mode=" << ModeName(mode())
          << "\n a=" << ToString(*ts[i]) << "\n b=" << ToString(*ts[j])
          << "\n ab=" << ToString(*ab) << "\n ba=" << ToString(*ba);
    }
  }
}

TEST_P(FusionProperties, Associativity) {
  const Fuser f = fuser();
  auto ts = RandomNormalTypes(f, seed() + 1000, 8);
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = 0; j < ts.size(); ++j) {
      for (size_t k = 0; k < ts.size(); k += 3) {
        TypeRef left = f.Fuse(f.Fuse(ts[i], ts[j]), ts[k]);
        TypeRef right = f.Fuse(ts[i], f.Fuse(ts[j], ts[k]));
        ASSERT_TRUE(left->Equals(*right))
            << "seed=" << seed() << " mode=" << ModeName(mode())
            << "\n a=" << ToString(*ts[i]) << "\n b=" << ToString(*ts[j])
            << "\n c=" << ToString(*ts[k]) << "\n (ab)c=" << ToString(*left)
            << "\n a(bc)=" << ToString(*right);
      }
    }
  }
}

TEST_P(FusionProperties, CorrectnessMembershipPreserved) {
  // For sampled values: once a value's inferred type enters a fusion, the
  // value stays a member of every further fusion result (Thm 5.2 iterated).
  // The Matches witness (Lemma 5.1) must hold on memoized results too —
  // a stale cache hit would hand back a supertype of the *wrong* pair.
  const Fuser f = fuser();
  auto values = jsonsi::testing::RandomValues(seed() + 2000, 20);
  std::vector<TypeRef> types;
  types.reserve(values.size());
  for (const ValueRef& v : values) {
    types.push_back(inference::InferType(*v));
  }
  TypeRef fused = f.FuseAll(types);
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(Matches(*values[i], *fused))
        << "seed=" << seed() << " mode=" << ModeName(mode()) << " value#" << i
        << " fused=" << ToString(*fused);
  }
}

TEST_P(FusionProperties, PairwiseCorrectnessBothSides) {
  const Fuser f = fuser();
  auto values = jsonsi::testing::RandomValues(seed() + 3000, 10);
  for (size_t i = 0; i + 1 < values.size(); i += 2) {
    TypeRef ta = inference::InferType(*values[i]);
    TypeRef tb = inference::InferType(*values[i + 1]);
    TypeRef fab = f.Fuse(ta, tb);
    ASSERT_TRUE(Matches(*values[i], *fab)) << ToString(*fab);
    ASSERT_TRUE(Matches(*values[i + 1], *fab)) << ToString(*fab);
  }
}

TEST_P(FusionProperties, NormalityPreserved) {
  const Fuser f = fuser();
  auto ts = RandomNormalTypes(f, seed() + 4000, 10);
  for (const TypeRef& t : ts) ASSERT_TRUE(IsNormal(t)) << ToString(*t);
  TypeRef acc = Type::Empty();
  for (const TypeRef& t : ts) {
    acc = f.Fuse(acc, t);
    ASSERT_TRUE(IsNormal(acc)) << "seed=" << seed()
                               << " mode=" << ModeName(mode())
                               << " acc=" << ToString(*acc);
  }
}

TEST_P(FusionProperties, SelfFusionStabilizesAndAbsorbs) {
  // Fuse is NOT idempotent on types that still carry exact array types:
  // Figure 6 line 4 turns every matched exact array into its starred
  // simplification, so Fuse(T, T) may differ from T. One self-fusion
  // star-normalizes every reachable array, after which fusion is a join:
  // idempotent and absorbing.
  const Fuser f = fuser();
  auto ts = RandomNormalTypes(f, seed() + 5000, 10);
  TypeRef fused = f.FuseAll(ts);
  TypeRef stable = f.Fuse(fused, fused);
  ASSERT_TRUE(f.Fuse(stable, stable)->Equals(*stable)) << ToString(*stable);
  // Absorption: every input is already included in the stabilized schema.
  for (const TypeRef& t : ts) {
    ASSERT_TRUE(f.Fuse(stable, t)->Equals(*stable))
        << "seed=" << seed() << " mode=" << ModeName(mode())
        << "\n t=" << ToString(*t) << "\n stable=" << ToString(*stable);
  }
}

TEST_P(FusionProperties, FoldOrderIrrelevant) {
  const Fuser f = fuser();
  auto ts = RandomNormalTypes(f, seed() + 6000, 9);
  // Left fold.
  TypeRef left = f.FuseAll(ts);
  // Right fold.
  TypeRef right = Type::Empty();
  for (auto it = ts.rbegin(); it != ts.rend(); ++it) {
    right = f.Fuse(*it, right);
  }
  // Balanced tree fold.
  std::vector<TypeRef> layer = ts;
  while (layer.size() > 1) {
    std::vector<TypeRef> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(f.Fuse(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  TypeRef tree = layer.empty() ? Type::Empty() : layer.front();
  ASSERT_TRUE(left->Equals(*right));
  ASSERT_TRUE(left->Equals(*tree));
}

TEST_P(FusionProperties, FusedSizeBounded) {
  // Succinctness direction of the design: the fused type is never larger
  // than the concatenation of inputs (it collapses shared structure).
  const Fuser f = fuser();
  auto ts = RandomNormalTypes(f, seed() + 7000, 10);
  size_t total = 0;
  for (const TypeRef& t : ts) total += t->size();
  TypeRef fused = f.FuseAll(ts);
  EXPECT_LE(fused->size(), total + ts.size());  // + union-node slack
}

TEST_P(FusionProperties, PlainAndMemoizedAgree) {
  // Direct cross-mode differential (runs once per mode; trivially symmetric):
  // whatever mode this instantiation uses, the other mode yields the same
  // schema for the same fold.
  const Fuser f = fuser();
  const Fuser other =
      MakeFuser(mode() == FuseMode::kPlain ? FuseMode::kMemoized
                                           : FuseMode::kPlain);
  auto ts = RandomNormalTypes(f, seed() + 8000, 12);
  ASSERT_TRUE(f.FuseAll(ts)->Equals(*other.FuseAll(ts)))
      << "seed=" << seed() << " mode=" << ModeName(mode());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FusionProperties,
    ::testing::Combine(::testing::Range<uint64_t>(0, 20),
                       ::testing::Values(FuseMode::kPlain,
                                         FuseMode::kMemoized)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, FuseMode>>& info) {
      return std::string(ModeName(std::get<1>(info.param))) + "_" +
             std::to_string(std::get<0>(info.param));
    });

// The correctness anchor of fault-tolerant execution: whatever failure and
// retry schedule the cluster suffers, the fused schema equals the
// failure-free one — because a re-executed map task *recomputes* its partial
// schema exactly (inference is pure), and partials fuse to the same result
// in any completion order (Theorems 5.4/5.5). Note the at-most-once caveat:
// each partial is delivered exactly once. Duplicated delivery would NOT be
// safe — Fuse is not idempotent on types with exact array types (see
// SelfFusionStabilizesAndAbsorbs above).
class RetryReplayProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RetryReplayProperty, FusedSchemaUnchangedByFailuresAndRetries) {
  using engine::ClusterConfig;
  using engine::FaultSchedule;
  using engine::NodeCrash;
  using engine::Placement;
  using engine::RecoveryPolicy;

  const uint64_t seed = GetParam();
  const size_t kPartitions = 8;
  auto values = jsonsi::testing::RandomValues(seed + 8000, 64);
  const size_t per_part = values.size() / kPartitions;

  // One inference pass over a partition, from scratch — what a (re)launched
  // map task does.
  auto compute_partial = [&](size_t part) {
    TypeRef acc = Type::Empty();
    for (size_t i = part * per_part; i < (part + 1) * per_part; ++i) {
      acc = Fuse(acc, inference::InferType(*values[i]));
    }
    return acc;
  };

  // Failure-free run: every partial computed once, fused in task order.
  TypeRef baseline = Type::Empty();
  for (size_t p = 0; p < kPartitions; ++p) {
    baseline = Fuse(baseline, compute_partial(p));
  }

  // Crash, straggler, and corrupt-partition schedules, simulated to obtain
  // realistic completion (= delivery) orders under retries.
  std::vector<FaultSchedule> schedules(3);
  schedules[0].crashes = {NodeCrash{0, 0.2, 0.5}, NodeCrash{3, 0.1, 1.0}};
  schedules[1].straggler_factor = {1.0, 5.0, 1.0, 1.0, 3.0};
  schedules[2].corrupt_tasks = {1, 6};
  schedules[2].corrupt_attempt_failures = 2;

  for (size_t which = 0; which < schedules.size(); ++which) {
    RecoveryPolicy policy;
    policy.seed = seed;
    policy.max_attempts_per_task = 6;
    auto tasks = engine::MakeSpreadTasks(kPartitions, 16.0, 1e9, 6, 256);
    auto sim = engine::SimulateJob(tasks, ClusterConfig{},
                                   Placement::kLocalOnly, 0.0,
                                   schedules[which], policy);
    ASSERT_TRUE(sim.completed) << "schedule " << which << " seed " << seed;

    // Partials re-enter the reduce in completion order; retried tasks
    // recompute their partial from scratch. Each task delivers exactly once.
    std::vector<size_t> order(kPartitions);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return sim.task_finish_seconds[a] < sim.task_finish_seconds[b];
    });

    TypeRef replayed = Type::Empty();
    for (size_t task : order) {
      replayed = Fuse(replayed, compute_partial(task));  // recomputation
    }
    ASSERT_TRUE(replayed->Equals(*baseline))
        << "schedule " << which << " seed " << seed
        << "\n baseline=" << ToString(*baseline)
        << "\n replayed=" << ToString(*replayed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetryReplayProperty,
                         ::testing::Values<uint64_t>(11, 12, 13));

}  // namespace
}  // namespace jsonsi::fusion
