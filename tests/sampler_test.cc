// Tests for type-member sampling: soundness (every sample is a member),
// uninhabited types, option behaviour, and the subtype/export cross-checks
// it enables.

#include <gtest/gtest.h>

#include "export/json_schema.h"
#include "export/validator.h"
#include "fusion/fuse.h"
#include "inference/infer.h"
#include "random_value_gen.h"
#include "types/membership.h"
#include "types/printer.h"
#include "types/sampler.h"
#include "types/subtype.h"
#include "types/type_parser.h"

namespace jsonsi::types {
namespace {

TypeRef T(std::string_view text) {
  auto r = ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

TEST(SamplerTest, BasicTypes) {
  Rng rng(1);
  EXPECT_TRUE(SampleMember(*T("Null"), rng)->is_null());
  EXPECT_TRUE(SampleMember(*T("Bool"), rng)->is_bool());
  EXPECT_TRUE(SampleMember(*T("Num"), rng)->is_num());
  EXPECT_TRUE(SampleMember(*T("Str"), rng)->is_str());
}

TEST(SamplerTest, EmptyTypeHasNoMembers) {
  Rng rng(1);
  EXPECT_EQ(SampleMember(*T("Empty"), rng), nullptr);
  // A record with a mandatory Empty field is uninhabited too.
  TypeRef bad = Type::RecordUnchecked({{"dead", Type::Empty(), false}});
  EXPECT_EQ(SampleMember(*bad, rng), nullptr);
}

TEST(SamplerTest, EmptyStarYieldsEmptyArray) {
  Rng rng(1);
  json::ValueRef v = SampleMember(*T("[(Empty)*]"), rng);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->is_array());
  EXPECT_TRUE(v->elements().empty());
}

TEST(SamplerTest, MandatoryFieldsAlwaysPresent) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    json::ValueRef v = SampleMember(*T("{a: Num, b: Str?}"), rng);
    ASSERT_NE(v, nullptr);
    EXPECT_NE(v->Find("a"), nullptr);
  }
}

TEST(SamplerTest, OptionalPresenceIsTunable) {
  Rng rng(5);
  SampleOptions never;
  never.optional_presence = 0.0;
  SampleOptions always;
  always.optional_presence = 1.0;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(SampleMember(*T("{a: Num, b: Str?}"), rng, never)->Find("b"),
              nullptr);
    EXPECT_NE(SampleMember(*T("{a: Num, b: Str?}"), rng, always)->Find("b"),
              nullptr);
  }
}

TEST(SamplerTest, UnionCoversAllAlternativesEventually) {
  Rng rng(7);
  bool saw_num = false, saw_str = false, saw_record = false;
  for (int i = 0; i < 200 && !(saw_num && saw_str && saw_record); ++i) {
    json::ValueRef v = SampleMember(*T("Num + Str + {k: Bool}"), rng);
    saw_num |= v->is_num();
    saw_str |= v->is_str();
    saw_record |= v->is_record();
  }
  EXPECT_TRUE(saw_num);
  EXPECT_TRUE(saw_str);
  EXPECT_TRUE(saw_record);
}

TEST(SamplerTest, UnionSkipsUninhabitedAlternative) {
  // Num + {dead: Empty}: the record alternative has no members, so every
  // sample must be a Num.
  TypeRef t = Type::Union(
      {Type::Num(),
       Type::RecordUnchecked({{"dead", Type::Empty(), false}})});
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    json::ValueRef v = SampleMember(*t, rng);
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->is_num());
  }
}

class SamplerSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SamplerSoundness, SamplesAreMembers) {
  // For pipeline-produced types (inferred and fused), every sample matches.
  auto values = jsonsi::testing::RandomValues(GetParam(), 16);
  Rng rng(GetParam() * 31 + 7);
  for (size_t i = 0; i + 1 < values.size(); i += 2) {
    TypeRef inferred = inference::InferType(*values[i]);
    TypeRef fused =
        fusion::Fuse(inferred, inference::InferType(*values[i + 1]));
    for (const TypeRef& t : {inferred, fused}) {
      for (int k = 0; k < 10; ++k) {
        json::ValueRef sample = SampleMember(*t, rng);
        ASSERT_NE(sample, nullptr) << ToString(*t);
        ASSERT_TRUE(Matches(*sample, *t)) << ToString(*t);
      }
    }
  }
}

TEST_P(SamplerSoundness, SubtypeSoundnessViaSampling) {
  // Semantic cross-check of IsSubtypeOf: members of T must match any
  // fused supertype of T.
  auto values = jsonsi::testing::RandomValues(GetParam() + 100, 12);
  Rng rng(GetParam() * 57 + 11);
  std::vector<TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  TypeRef super = fusion::FuseAll(ts);
  for (const TypeRef& t : ts) {
    ASSERT_TRUE(IsSubtypeOf(*t, *super));
    for (int k = 0; k < 8; ++k) {
      json::ValueRef sample = SampleMember(*t, rng);
      ASSERT_NE(sample, nullptr);
      ASSERT_TRUE(Matches(*sample, *super))
          << "member of " << ToString(*t) << " rejected by supertype";
    }
  }
}

TEST_P(SamplerSoundness, ExportedSchemasAcceptSamples) {
  auto values = jsonsi::testing::RandomValues(GetParam() + 200, 10);
  Rng rng(GetParam() * 13 + 3);
  std::vector<TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  TypeRef schema = fusion::FuseAll(ts);
  json::ValueRef exported = exporter::ToJsonSchema(schema);
  for (int k = 0; k < 30; ++k) {
    json::ValueRef sample = SampleMember(*schema, rng);
    ASSERT_NE(sample, nullptr);
    EXPECT_TRUE(exporter::Validates(*sample, *exported));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerSoundness,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace jsonsi::types
