// End-to-end tests for the SchemaInferencer facade: pipeline results,
// statistics, partitioning invariance, incremental merge (the paper's
// associativity use-case), and file/JSON-Lines entry points.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/schema_inferencer.h"
#include "datagen/generator.h"
#include "json/serializer.h"
#include "random_value_gen.h"
#include "stats/paths.h"
#include "types/membership.h"
#include "types/type_parser.h"

namespace jsonsi::core {
namespace {

types::TypeRef T(std::string_view text) {
  auto r = types::ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

TEST(SchemaInferencerTest, SimplePipeline) {
  SchemaInferencer inferencer;
  auto r = inferencer.InferFromJsonLines(
      "{\"a\": 1, \"b\": \"x\"}\n"
      "{\"a\": \"one\", \"c\": true}\n");
  ASSERT_TRUE(r.ok()) << r.status();
  const Schema& schema = r.value();
  EXPECT_TRUE(schema.type->Equals(
      *T("{a: (Num + Str), b: Str?, c: Bool?}")))
      << schema.ToString();
  EXPECT_EQ(schema.stats.record_count, 2u);
  EXPECT_EQ(schema.stats.distinct_type_count, 2u);
}

TEST(SchemaInferencerTest, EmptyInputYieldsEmptySchema) {
  SchemaInferencer inferencer;
  Schema schema = inferencer.InferFromValues({});
  EXPECT_TRUE(schema.type->is_empty());
  EXPECT_EQ(schema.stats.record_count, 0u);
  EXPECT_EQ(schema.ToString(), "Empty");
}

TEST(SchemaInferencerTest, StatsMatchManualComputation) {
  // Types: {a:Num} (size 3) x2 and {a:Num,b:Str} (size 5) x1.
  SchemaInferencer inferencer;
  auto r = inferencer.InferFromJsonLines(
      "{\"a\": 1}\n{\"a\": 2}\n{\"a\": 3, \"b\": \"s\"}\n");
  ASSERT_TRUE(r.ok());
  const SchemaStats& stats = r.value().stats;
  EXPECT_EQ(stats.record_count, 3u);
  EXPECT_EQ(stats.distinct_type_count, 2u);
  EXPECT_EQ(stats.min_type_size, 3u);
  EXPECT_EQ(stats.max_type_size, 5u);
  EXPECT_NEAR(stats.avg_type_size, 11.0 / 3.0, 1e-12);
  EXPECT_GE(stats.infer_seconds, 0.0);
  EXPECT_GE(stats.fuse_seconds, 0.0);
}

TEST(SchemaInferencerTest, CollectStatsCanBeDisabled) {
  InferenceOptions opts;
  opts.collect_stats = false;
  SchemaInferencer inferencer(opts);
  auto values = jsonsi::testing::RandomValues(5, 10);
  Schema schema = inferencer.InferFromValues(values);
  EXPECT_EQ(schema.stats.distinct_type_count, 0u);
  EXPECT_EQ(schema.stats.record_count, 10u);
  EXPECT_TRUE(schema.type != nullptr);
}

TEST(SchemaInferencerTest, ResultIndependentOfPartitioningAndThreads) {
  auto values = jsonsi::testing::RandomValues(123, 200);
  Schema reference;
  {
    InferenceOptions opts;
    opts.num_threads = 1;
    opts.num_partitions = 1;
    reference = SchemaInferencer(opts).InferFromValues(values);
  }
  for (size_t threads : {2u, 4u}) {
    for (size_t partitions : {3u, 8u, 64u}) {
      InferenceOptions opts;
      opts.num_threads = threads;
      opts.num_partitions = partitions;
      Schema schema = SchemaInferencer(opts).InferFromValues(values);
      EXPECT_TRUE(schema.type->Equals(*reference.type))
          << threads << " threads, " << partitions << " partitions";
      EXPECT_EQ(schema.stats.distinct_type_count,
                reference.stats.distinct_type_count);
      EXPECT_EQ(schema.stats.min_type_size, reference.stats.min_type_size);
      EXPECT_EQ(schema.stats.max_type_size, reference.stats.max_type_size);
      EXPECT_NEAR(schema.stats.avg_type_size, reference.stats.avg_type_size,
                  1e-9);
    }
  }
}

TEST(SchemaInferencerTest, AllInputsMatchFinalSchema) {
  auto values = jsonsi::testing::RandomValues(7, 100);
  Schema schema = SchemaInferencer().InferFromValues(values);
  for (const auto& v : values) {
    EXPECT_TRUE(types::Matches(*v, *schema.type));
  }
}

TEST(SchemaInferencerTest, IncrementalMergeEqualsBatch) {
  // The incremental-maintenance story: schema(A) fused with schema(B) equals
  // schema(A u B).
  auto values = jsonsi::testing::RandomValues(55, 120);
  std::vector<json::ValueRef> first(values.begin(), values.begin() + 70);
  std::vector<json::ValueRef> second(values.begin() + 70, values.end());
  SchemaInferencer inferencer;
  Schema batch = inferencer.InferFromValues(values);
  Schema merged = SchemaInferencer::Merge(inferencer.InferFromValues(first),
                                          inferencer.InferFromValues(second));
  EXPECT_TRUE(merged.type->Equals(*batch.type));
  EXPECT_EQ(merged.stats.record_count, batch.stats.record_count);
  EXPECT_EQ(merged.stats.min_type_size, batch.stats.min_type_size);
  EXPECT_EQ(merged.stats.max_type_size, batch.stats.max_type_size);
  EXPECT_NEAR(merged.stats.avg_type_size, batch.stats.avg_type_size, 1e-9);
}

TEST(SchemaInferencerTest, SingleRecordMergeModelsInsertion) {
  // Inserting one new record = fusing the existing schema with the record's
  // schema (Section 1).
  SchemaInferencer inferencer;
  auto base = inferencer.InferFromJsonLines("{\"a\": 1}\n{\"a\": 2}\n");
  ASSERT_TRUE(base.ok());
  auto insert = inferencer.InferFromJsonLines("{\"a\": null, \"new\": []}\n");
  ASSERT_TRUE(insert.ok());
  Schema after = SchemaInferencer::Merge(base.value(), insert.value());
  EXPECT_TRUE(after.type->Equals(*T("{a: (Null + Num), new: []?}")))
      << after.ToString();
  EXPECT_EQ(after.stats.record_count, 3u);
}

TEST(SchemaInferencerTest, MergeWithEmptySchemaIsIdentity) {
  SchemaInferencer inferencer;
  auto values = jsonsi::testing::RandomValues(9, 20);
  Schema schema = inferencer.InferFromValues(values);
  Schema empty = inferencer.InferFromValues({});
  Schema merged = SchemaInferencer::Merge(schema, empty);
  EXPECT_TRUE(merged.type->Equals(*schema.type));
  EXPECT_EQ(merged.stats.distinct_type_count,
            schema.stats.distinct_type_count);
  EXPECT_EQ(merged.stats.avg_type_size, schema.stats.avg_type_size);
}

TEST(SchemaInferencerTest, InferFromFileWorks) {
  std::string path = ::testing::TempDir() + "/jsonsi_core_test.jsonl";
  {
    std::ofstream out(path);
    auto gen = datagen::MakeGenerator(datagen::DatasetId::kGitHub, 1);
    for (uint64_t i = 0; i < 50; ++i) {
      out << json::ToJson(*gen->Generate(i)) << "\n";
    }
  }
  auto r = SchemaInferencer().InferFromFile(path);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().stats.record_count, 50u);
  EXPECT_TRUE(r.value().type->is_record());
  std::remove(path.c_str());
}

TEST(SchemaInferencerTest, ParseErrorsSurface) {
  EXPECT_FALSE(SchemaInferencer().InferFromJsonLines("{oops\n").ok());
  EXPECT_FALSE(SchemaInferencer().InferFromFile("/no/such/file.jsonl").ok());
}

TEST(SchemaInferencerTest, PrettyPrintingIsMultiline) {
  auto r = SchemaInferencer().InferFromJsonLines(
      "{\"a\": 1, \"b\": {\"c\": true}}\n");
  ASSERT_TRUE(r.ok());
  std::string pretty = r.value().ToString(/*pretty=*/true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
}

// End-to-end over every generator: schema covers all value paths.
class CorePerDataset : public ::testing::TestWithParam<datagen::DatasetId> {};

TEST_P(CorePerDataset, SchemaCoversAllRecordPaths) {
  auto gen = datagen::MakeGenerator(GetParam(), 2024);
  auto values = gen->GenerateMany(300);
  Schema schema = SchemaInferencer().InferFromValues(values);
  auto schema_paths = stats::TypePaths(*schema.type);
  for (const auto& v : values) {
    for (const auto& p : stats::ValuePaths(*v)) {
      ASSERT_TRUE(schema_paths.count(p))
          << datagen::DatasetName(GetParam()) << " missing " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, CorePerDataset,
    ::testing::Values(datagen::DatasetId::kGitHub, datagen::DatasetId::kTwitter,
                      datagen::DatasetId::kWikidata,
                      datagen::DatasetId::kNYTimes),
    [](const ::testing::TestParamInfo<datagen::DatasetId>& info) {
      return datagen::DatasetName(info.param);
    });

}  // namespace
}  // namespace jsonsi::core
