// Unit tests for the JSON value model (Figure 2 of the paper): shapes,
// record canonicalization (field order irrelevance), key uniqueness,
// structural equality and hashing.

#include <gtest/gtest.h>

#include "json/value.h"
#include "random_value_gen.h"

namespace jsonsi::json {
namespace {

TEST(ValueTest, NullSingleton) {
  ValueRef a = Value::Null();
  EXPECT_TRUE(a->is_null());
  EXPECT_EQ(a.get(), Value::Null().get());  // shared singleton
}

TEST(ValueTest, BoolPayload) {
  EXPECT_TRUE(Value::Bool(true)->bool_value());
  EXPECT_FALSE(Value::Bool(false)->bool_value());
  EXPECT_TRUE(Value::Bool(true)->is_bool());
}

TEST(ValueTest, NumPayload) {
  EXPECT_DOUBLE_EQ(Value::Num(3.25)->num_value(), 3.25);
  EXPECT_TRUE(Value::Num(0)->is_num());
}

TEST(ValueTest, StrPayload) {
  EXPECT_EQ(Value::Str("hello")->str_value(), "hello");
  EXPECT_TRUE(Value::Str("")->is_str());
}

TEST(ValueTest, RecordFieldsAreKeySorted) {
  ValueRef r = Value::RecordUnchecked(
      {{"zeta", Value::Num(1)}, {"alpha", Value::Num(2)}});
  ASSERT_EQ(r->fields().size(), 2u);
  EXPECT_EQ(r->fields()[0].key, "alpha");
  EXPECT_EQ(r->fields()[1].key, "zeta");
}

TEST(ValueTest, RecordsEqualUpToFieldOrder) {
  // The paper identifies records differing only in field order.
  ValueRef a = Value::RecordUnchecked(
      {{"x", Value::Num(1)}, {"y", Value::Str("s")}});
  ValueRef b = Value::RecordUnchecked(
      {{"y", Value::Str("s")}, {"x", Value::Num(1)}});
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_EQ(a->hash(), b->hash());
}

TEST(ValueTest, CheckedRecordRejectsDuplicateKeys) {
  Result<ValueRef> r =
      Value::Record({{"k", Value::Num(1)}, {"k", Value::Num(2)}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValueTest, CheckedRecordAcceptsDistinctKeys) {
  Result<ValueRef> r =
      Value::Record({{"a", Value::Num(1)}, {"b", Value::Num(2)}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->fields().size(), 2u);
}

TEST(ValueTest, FindLocatesFields) {
  ValueRef r = Value::RecordUnchecked(
      {{"a", Value::Num(1)}, {"m", Value::Str("v")}, {"z", Value::Null()}});
  ASSERT_NE(r->Find("m"), nullptr);
  EXPECT_EQ(r->Find("m")->str_value(), "v");
  EXPECT_EQ(r->Find("missing"), nullptr);
}

TEST(ValueTest, ArrayPreservesOrder) {
  ValueRef a = Value::Array({Value::Num(1), Value::Num(2)});
  ValueRef b = Value::Array({Value::Num(2), Value::Num(1)});
  EXPECT_FALSE(a->Equals(*b));  // arrays are ordered lists
  ASSERT_EQ(a->elements().size(), 2u);
  EXPECT_DOUBLE_EQ(a->elements()[0]->num_value(), 1);
}

TEST(ValueTest, EmptyRecordAndArrayDiffer) {
  ValueRef r = Value::RecordUnchecked({});
  ValueRef a = Value::Array({});
  EXPECT_FALSE(r->Equals(*a));
  EXPECT_NE(r->hash(), a->hash());
}

TEST(ValueTest, EqualityIsDeepForNestedStructures) {
  auto make = [] {
    return Value::RecordUnchecked(
        {{"list", Value::Array({Value::Num(1),
                                Value::RecordUnchecked(
                                    {{"inner", Value::Bool(true)}})})},
         {"name", Value::Str("n")}});
  };
  EXPECT_TRUE(make()->Equals(*make()));
  EXPECT_EQ(make()->hash(), make()->hash());
}

TEST(ValueTest, DistinctValuesHashDifferently) {
  // Not guaranteed in theory, but must hold for these simple cases.
  EXPECT_NE(Value::Num(1)->hash(), Value::Num(2)->hash());
  EXPECT_NE(Value::Str("a")->hash(), Value::Str("b")->hash());
  EXPECT_NE(Value::Null()->hash(), Value::Bool(false)->hash());
}

TEST(ValueTest, TreeSizeCountsNodes) {
  EXPECT_EQ(Value::Num(1)->TreeSize(), 1u);
  // record(1) + field(1)+num(1) + field(1)+arr(1+2 elems)
  ValueRef v = Value::RecordUnchecked(
      {{"n", Value::Num(1)},
       {"a", Value::Array({Value::Null(), Value::Null()})}});
  EXPECT_EQ(v->TreeSize(), 1u + (1u + 1u) + (1u + 3u));
}

TEST(ValueTest, ValueEqualsHandlesSharedRefs) {
  ValueRef v = Value::Str("x");
  EXPECT_TRUE(ValueEquals(v, v));
  EXPECT_TRUE(ValueEquals(Value::Str("x"), Value::Str("x")));
  EXPECT_FALSE(ValueEquals(Value::Str("x"), Value::Str("y")));
}

TEST(ValueTest, RandomValuesEqualThemselvesStructurally) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    ValueRef a = jsonsi::testing::RandomValue(seed);
    ValueRef b = jsonsi::testing::RandomValue(seed);
    EXPECT_TRUE(a->Equals(*b)) << "seed=" << seed;
    EXPECT_EQ(a->hash(), b->hash()) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace jsonsi::json
