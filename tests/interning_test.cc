// Differential property suite for hash-consed interning + memoized fusion.
//
// The optimization contract is *invisibility*: with interning, the fusion
// memo, and TreeFuser dedup enabled, every pipeline (InferType, Fuse,
// TreeFuser, SchemaInferencer, StreamingInferencer) must produce schemas
// STRUCTURALLY IDENTICAL to the unoptimized path. This suite enforces that
// over thousands of seeded random values (tests/random_value_gen.h) and over
// the table workloads (datagen generators), including the Wikidata-style
// wide-record shape whose mostly-distinct types exercise interner eviction
// and the dedup spill path.
//
// It also pins the identity property interning adds (equal interned types
// are pointer-identical), the bounded-table behaviour of TypeInterner and
// FuseCache (capacity, eviction, pass-through), and thread-safety: the
// concurrency test at the bottom hammers one interner + cache from many
// threads on overlapping inputs and runs under ASan/UBSan and TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/schema_inferencer.h"
#include "core/streaming_inferencer.h"
#include "datagen/generator.h"
#include "fusion/fuse.h"
#include "fusion/fuse_cache.h"
#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "random_value_gen.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "types/interner.h"
#include "types/printer.h"

namespace jsonsi {
namespace {

using fusion::FuseCache;
using fusion::FuseCacheOptions;
using fusion::FuseOptions;
using fusion::Fuser;
using fusion::TreeFuser;
using json::ValueRef;
using types::InternerOptions;
using types::ScopedInterning;
using types::ToString;
using types::Type;
using types::TypeInterner;
using types::TypeRef;

// A Fuser with every optimization layer off: the reference implementation
// the optimized path must be indistinguishable from.
Fuser PlainFuser() {
  FuseOptions opts;
  opts.intern = false;
  opts.memoize = false;
  opts.dedup = false;
  return Fuser(opts);
}

// ---------------------------------------------------------------------------
// Differential properties over seeded random values.
// ---------------------------------------------------------------------------

class InterningDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InterningDifferential, InferIsUnchangedByInterning) {
  const uint64_t seed = GetParam();
  auto values = jsonsi::testing::RandomValues(seed, 100);
  for (const ValueRef& v : values) {
    TypeRef plain;
    {
      ScopedInterning off(false);
      plain = inference::InferType(*v);
    }
    TypeRef interned;
    {
      ScopedInterning on(true);
      interned = inference::InferType(*v);
    }
    ASSERT_TRUE(plain->Equals(*interned))
        << "seed=" << seed << "\n plain=" << ToString(*plain)
        << "\n interned=" << ToString(*interned);
  }
}

TEST_P(InterningDifferential, PairwiseFuseAgreesWithPlainPath) {
  const uint64_t seed = GetParam();
  ScopedInterning on(true);
  auto values = jsonsi::testing::RandomValues(seed + 100, 60);
  std::vector<TypeRef> ts;
  ts.reserve(values.size());
  for (const ValueRef& v : values) ts.push_back(inference::InferType(*v));
  const Fuser plain = PlainFuser();
  const Fuser memo;  // default: intern + memoize on
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = i; j < ts.size(); j += 7) {
      TypeRef want = plain.Fuse(ts[i], ts[j]);
      TypeRef got = memo.Fuse(ts[i], ts[j]);
      ASSERT_TRUE(want->Equals(*got))
          << "seed=" << seed << "\n a=" << ToString(*ts[i])
          << "\n b=" << ToString(*ts[j]) << "\n want=" << ToString(*want)
          << "\n got=" << ToString(*got);
    }
  }
}

TEST_P(InterningDifferential, TreeFuserDedupAgreesWithPlainFold) {
  const uint64_t seed = GetParam();
  // Duplicate-heavy stream: a shared pool sampled with repetition, so the
  // dedup multiset sees real multiplicities (the workload shape interning
  // is built for).
  auto pool = jsonsi::testing::RandomValues(seed + 200, 16);
  Rng rng(seed + 300);
  std::vector<ValueRef> stream;
  for (size_t i = 0; i < 400; ++i) stream.push_back(rng.Pick(pool));

  TypeRef plain;
  {
    ScopedInterning off(false);
    TreeFuser fuser{PlainFuser()};
    for (const ValueRef& v : stream) fuser.Add(inference::InferType(*v));
    plain = fuser.Finish();
  }
  TypeRef optimized;
  {
    ScopedInterning on(true);
    TreeFuser fuser;  // default fuser: intern + memo + dedup
    for (const ValueRef& v : stream) fuser.Add(inference::InferType(*v));
    EXPECT_GT(fuser.pending_distinct(), 0u);
    EXPECT_LE(fuser.pending_distinct(), pool.size());
    optimized = fuser.Finish();
  }
  ASSERT_TRUE(plain->Equals(*optimized))
      << "seed=" << seed << "\n plain=" << ToString(*plain)
      << "\n optimized=" << ToString(*optimized);
}

TEST_P(InterningDifferential, DedupSpillPathAgreesOnDistinctHeavyStreams) {
  const uint64_t seed = GetParam();
  // Mostly-distinct stream with a tiny dedup buffer: every Add soon flushes
  // pending entries into the binary-counter slots, exercising the spill.
  auto values = jsonsi::testing::RandomValues(seed + 400, 120);

  TypeRef plain;
  {
    ScopedInterning off(false);
    TreeFuser fuser{PlainFuser()};
    for (const ValueRef& v : values) fuser.Add(inference::InferType(*v));
    plain = fuser.Finish();
  }
  TypeRef optimized;
  {
    ScopedInterning on(true);
    FuseOptions opts;  // defaults on, but force constant spilling
    opts.dedup_max_pending = 4;
    TreeFuser fuser{Fuser(opts)};
    for (const ValueRef& v : values) fuser.Add(inference::InferType(*v));
    optimized = fuser.Finish();
  }
  ASSERT_TRUE(plain->Equals(*optimized)) << "seed=" << seed;
}

TEST_P(InterningDifferential, SchemaInferencerEndToEndAgrees) {
  const uint64_t seed = GetParam();
  auto values = jsonsi::testing::RandomValues(seed + 500, 150);
  core::InferenceOptions options;
  options.num_threads = 4;
  options.num_partitions = 5;
  core::Schema plain, optimized;
  {
    ScopedInterning off(false);
    plain = core::SchemaInferencer(options).InferFromValues(values);
  }
  {
    ScopedInterning on(true);
    optimized = core::SchemaInferencer(options).InferFromValues(values);
  }
  ASSERT_TRUE(plain.type->Equals(*optimized.type))
      << "seed=" << seed << "\n plain=" << plain.ToString()
      << "\n optimized=" << optimized.ToString();
  EXPECT_EQ(plain.stats.record_count, optimized.stats.record_count);
  EXPECT_EQ(plain.stats.distinct_type_count,
            optimized.stats.distinct_type_count);
}

TEST_P(InterningDifferential, StreamingInferencerSnapshotAndMergeAgree) {
  const uint64_t seed = GetParam();
  auto values = jsonsi::testing::RandomValues(seed + 600, 80);
  auto run = [&](bool enabled) {
    ScopedInterning guard(enabled);
    core::StreamingInferencer left, right;
    for (size_t i = 0; i < values.size(); ++i) {
      (i % 2 ? right : left).AddValue(values[i]);
    }
    left.Merge(right);
    return left.Snapshot();
  };
  core::Schema plain = run(false);
  core::Schema optimized = run(true);
  ASSERT_TRUE(plain.type->Equals(*optimized.type)) << "seed=" << seed;
  EXPECT_EQ(plain.stats.distinct_type_count,
            optimized.stats.distinct_type_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterningDifferential,
                         ::testing::Range<uint64_t>(0, 12));

// ---------------------------------------------------------------------------
// Differential checks over the table workloads (datagen generators),
// including the Wikidata wide-record regression shape: thousands of
// key-as-data fields, mostly-distinct types, wide fused schema.
// ---------------------------------------------------------------------------

class InterningDatasets
    : public ::testing::TestWithParam<jsonsi::datagen::DatasetId> {};

TEST_P(InterningDatasets, PipelineAgreesOnTableWorkload) {
  auto gen = datagen::MakeGenerator(GetParam(), /*seed=*/42);
  auto values = gen->GenerateMany(300);
  TypeRef plain;
  {
    ScopedInterning off(false);
    TreeFuser fuser{PlainFuser()};
    for (const ValueRef& v : values) fuser.Add(inference::InferType(*v));
    plain = fuser.Finish();
  }
  TypeRef optimized;
  {
    ScopedInterning on(true);
    TreeFuser fuser;
    for (const ValueRef& v : values) fuser.Add(inference::InferType(*v));
    optimized = fuser.Finish();
  }
  ASSERT_TRUE(plain->Equals(*optimized))
      << datagen::DatasetName(GetParam()) << "\n plain=" << ToString(*plain)
      << "\n optimized=" << ToString(*optimized);
}

INSTANTIATE_TEST_SUITE_P(Tables, InterningDatasets,
                         ::testing::Values(datagen::DatasetId::kGitHub,
                                           datagen::DatasetId::kTwitter,
                                           datagen::DatasetId::kWikidata,
                                           datagen::DatasetId::kNYTimes));

// ---------------------------------------------------------------------------
// Identity properties interning adds on top of structural equality.
// ---------------------------------------------------------------------------

TEST(TypeInternerTest, EqualInternedTypesArePointerIdentical) {
  ScopedInterning on(true);
  // Equal values inferred independently share one node tree after interning.
  auto values_a = jsonsi::testing::RandomValues(7, 50);
  auto values_b = jsonsi::testing::RandomValues(7, 50);  // same seed
  for (size_t i = 0; i < values_a.size(); ++i) {
    TypeRef a = inference::InferType(*values_a[i]);
    TypeRef b = inference::InferType(*values_b[i]);
    ASSERT_TRUE(a->Equals(*b));
    if (a->is_record() || a->is_array()) {
      EXPECT_EQ(a.get(), b.get()) << "value #" << i << ": " << ToString(*a);
    }
  }
}

TEST(TypeInternerTest, InternIsIdempotentAndStructurePreserving) {
  TypeInterner interner;
  auto values = jsonsi::testing::RandomValues(11, 30);
  for (const ValueRef& v : values) {
    TypeRef t;
    {
      ScopedInterning off(false);  // fresh, unshared tree
      t = inference::InferType(*v);
    }
    TypeRef once = interner.Intern(t);
    TypeRef twice = interner.Intern(once);
    ASSERT_TRUE(t->Equals(*once));
    EXPECT_EQ(once.get(), twice.get());
    EXPECT_EQ(once.get(), interner.Intern(t).get());
  }
  EXPECT_GT(interner.stats().hits, 0u);
}

TEST(TypeInternerTest, BoundedCapacityEvictsInsteadOfGrowing) {
  InternerOptions opts;
  opts.num_shards = 1;
  opts.capacity = 8;
  TypeInterner interner(opts);
  ScopedInterning off(false);  // keep InferType from touching the global
  auto values = jsonsi::testing::RandomValues(13, 200);
  for (const ValueRef& v : values) interner.Intern(inference::InferType(*v));
  auto stats = interner.stats();
  EXPECT_LE(stats.size, 8u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.hits + stats.misses + stats.pass_through,
            values.size());
}

TEST(TypeInternerTest, OversizeTypesPassThrough) {
  InternerOptions opts;
  opts.max_type_size = 4;
  TypeInterner interner(opts);
  TypeRef small = Type::RecordUnchecked({{"a", Type::Num(), false}});
  std::vector<types::FieldType> wide;
  for (char c = 'a'; c <= 'z'; ++c) {
    wide.push_back({std::string(1, c), Type::Num(), false});
  }
  TypeRef big = Type::RecordUnchecked(std::move(wide));
  EXPECT_EQ(interner.Intern(small).get(), small.get());  // inserted
  EXPECT_EQ(interner.Intern(big).get(), big.get());      // passed through
  auto stats = interner.stats();
  EXPECT_EQ(stats.pass_through, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_TRUE(interner.Contains(small));
  EXPECT_FALSE(interner.Contains(big));
}

TEST(FuseCacheTest, CommutativelyNormalizedKeysShareOneEntry) {
  FuseCache cache;
  TypeRef a = Type::RecordUnchecked({{"a", Type::Num(), false}});
  TypeRef b = Type::RecordUnchecked({{"b", Type::Str(), false}});
  TypeRef fused = fusion::Fuse(a, b);
  EXPECT_EQ(cache.Lookup(a, b, 0), nullptr);
  cache.Insert(a, b, 0, fused);
  TypeRef forward = cache.Lookup(a, b, 0);
  TypeRef reversed = cache.Lookup(b, a, 0);  // Theorem 5.4 normalization
  ASSERT_NE(forward, nullptr);
  EXPECT_EQ(forward.get(), fused.get());
  ASSERT_NE(reversed, nullptr);
  EXPECT_EQ(reversed.get(), fused.get());
  // A different option fingerprint must not alias.
  EXPECT_EQ(cache.Lookup(a, b, 2), nullptr);
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(FuseCacheTest, BoundedCapacityEvicts) {
  FuseCacheOptions opts;
  opts.num_shards = 1;
  opts.capacity = 4;
  FuseCache cache(opts);
  std::vector<TypeRef> ts;
  for (char c = 'a'; c <= 'p'; ++c) {
    ts.push_back(
        Type::RecordUnchecked({{std::string(1, c), Type::Num(), false}}));
  }
  for (size_t i = 0; i + 1 < ts.size(); ++i) {
    cache.Insert(ts[i], ts[i + 1], 0, fusion::Fuse(ts[i], ts[i + 1]));
  }
  auto stats = cache.stats();
  EXPECT_LE(stats.size, 4u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(MemoizedFuseTest, CacheHitsAreStructurallyExact) {
  // Fusing the same logical pair twice: second round must hit the memo and
  // return the identical (pointer-equal) result node.
  ScopedInterning on(true);
  FuseCache::Global().Clear();
  auto values = jsonsi::testing::RandomValues(17, 20);
  std::vector<TypeRef> ts;
  for (const ValueRef& v : values) ts.push_back(inference::InferType(*v));
  const Fuser memo;
  std::vector<TypeRef> first, second;
  for (size_t i = 0; i + 1 < ts.size(); i += 2) {
    first.push_back(memo.Fuse(ts[i], ts[i + 1]));
  }
  uint64_t hits_before = FuseCache::Global().stats().hits;
  for (size_t i = 0; i + 1 < ts.size(); i += 2) {
    second.push_back(memo.Fuse(ts[i], ts[i + 1]));
  }
  EXPECT_GE(FuseCache::Global().stats().hits,
            hits_before + first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].get(), second[i].get());
  }
}

// ---------------------------------------------------------------------------
// TreeFuser::Finish() edge cases (the Fuse(eps, slot) warm-up is gone).
// ---------------------------------------------------------------------------

TEST(TreeFuserFinishTest, SingleElementFinishPerformsNoFusion) {
  // With the fold starting at the first live slot, a one-element stream
  // finishes without a single Fuse call — pinned via telemetry counters.
  ScopedInterning off(false);  // keep the dedup layer out of the way
  telemetry::MetricsRegistry::Global().ResetAll();
  telemetry::SetEnabled(true);
  TreeFuser fuser{PlainFuser()};
  TypeRef t = Type::RecordUnchecked({{"a", Type::Num(), false}});
  fuser.Add(t);
  TypeRef finished = fuser.Finish();
  telemetry::SetEnabled(false);
  auto snap = telemetry::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.CounterValue("fuse.calls"), 0u);
  EXPECT_EQ(snap.CounterValue("fuse.identity_hits"), 0u);
  EXPECT_EQ(finished.get(), t.get());
  telemetry::MetricsRegistry::Global().ResetAll();
}

TEST(TreeFuserFinishTest, EmptyAndOneElementEdgeCases) {
  TreeFuser empty;
  EXPECT_TRUE(empty.Finish()->is_empty());
  EXPECT_TRUE(empty.Finish()->is_empty());  // idempotent on empty

  TreeFuser one;
  TypeRef t = Type::RecordUnchecked({{"x", Type::Str(), false}});
  one.Add(t);
  EXPECT_TRUE(one.Finish()->Equals(*t));
  EXPECT_TRUE(one.Finish()->Equals(*t));  // idempotent
  EXPECT_EQ(one.count(), 1u);
}

TEST(TreeFuserFinishTest, FinishIdempotentUnderDedupAndResumable) {
  ScopedInterning on(true);
  TreeFuser fuser;
  auto values = jsonsi::testing::RandomValues(19, 30);
  for (size_t i = 0; i < 20; ++i) {
    fuser.Add(inference::InferType(*values[i % 10]));  // duplicates
  }
  TypeRef first = fuser.Finish();
  TypeRef again = fuser.Finish();
  ASSERT_TRUE(first->Equals(*again));
  // Resumable: more Adds after Finish still fold in.
  for (size_t i = 10; i < 30; ++i) {
    fuser.Add(inference::InferType(*values[i]));
  }
  TypeRef final_schema = fuser.Finish();
  // Reference: plain fold over the same multiset.
  ScopedInterning off(false);
  TreeFuser plain{PlainFuser()};
  for (size_t i = 0; i < 20; ++i) {
    plain.Add(inference::InferType(*values[i % 10]));
  }
  for (size_t i = 10; i < 30; ++i) {
    plain.Add(inference::InferType(*values[i]));
  }
  ASSERT_TRUE(final_schema->Equals(*plain.Finish()));
}

// ---------------------------------------------------------------------------
// Concurrency: one interner + one cache hammered from N threads on
// overlapping inputs. Runs under ASan/UBSan and TSan in CI.
// ---------------------------------------------------------------------------

TEST(InterningConcurrencyTest, ParallelInternAndFuseStayConsistent) {
  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 60;

  // Shared pool of values; every thread infers and fuses overlapping pairs,
  // all through the global interner + cache.
  auto pool = jsonsi::testing::RandomValues(23, 40);

  // Reference results, computed single-threaded on the plain path.
  std::vector<TypeRef> plain_types;
  std::vector<TypeRef> plain_fused;
  {
    ScopedInterning off(false);
    const Fuser plain = PlainFuser();
    for (const ValueRef& v : pool) {
      plain_types.push_back(inference::InferType(*v));
    }
    for (size_t i = 0; i < pool.size(); ++i) {
      plain_fused.push_back(
          plain.Fuse(plain_types[i], plain_types[(i + 1) % pool.size()]));
    }
  }

  ScopedInterning on(true);
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      const Fuser memo;  // default: global interner + cache
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t i = tid; i < pool.size(); i += 1 + (tid % 3)) {
          TypeRef a = inference::InferType(*pool[i]);
          TypeRef b = inference::InferType(*pool[(i + 1) % pool.size()]);
          TypeRef fused = memo.Fuse(a, b);
          if (!a->Equals(*plain_types[i]) ||
              !fused->Equals(*plain_fused[i])) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);

  // The shared tables took real traffic and stayed bounded.
  auto istats = TypeInterner::Global().stats();
  EXPECT_GT(istats.hits, 0u);
  EXPECT_LE(istats.size, TypeInterner::Global().options().capacity);
  auto cstats = FuseCache::Global().stats();
  EXPECT_GT(cstats.hits, 0u);
  EXPECT_LE(cstats.size, FuseCache::Global().options().capacity);
}

TEST(InterningConcurrencyTest, DedicatedTablesUnderContention) {
  // Same hammering against fresh (non-global) instances with tiny capacity,
  // to drive concurrent eviction through both tables.
  InternerOptions iopts;
  iopts.num_shards = 2;
  iopts.capacity = 16;
  TypeInterner interner(iopts);
  FuseCacheOptions copts;
  copts.num_shards = 2;
  copts.capacity = 16;
  FuseCache cache(copts);

  auto pool = jsonsi::testing::RandomValues(29, 64);
  std::vector<TypeRef> ts;
  {
    ScopedInterning off(false);
    for (const ValueRef& v : pool) ts.push_back(inference::InferType(*v));
  }

  constexpr size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      const Fuser plain = PlainFuser();
      for (size_t round = 0; round < 40; ++round) {
        for (size_t i = 0; i < ts.size(); ++i) {
          TypeRef a = interner.Intern(ts[(i + tid) % ts.size()]);
          TypeRef b = interner.Intern(ts[(i + tid + 1) % ts.size()]);
          TypeRef hit = cache.Lookup(a, b, 0);
          TypeRef fused = hit ? hit : plain.Fuse(a, b);
          if (!hit) cache.Insert(a, b, 0, fused);
          ASSERT_TRUE(fused->Equals(*plain.Fuse(a, b)));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(interner.stats().size, 16u);
  EXPECT_LE(cache.stats().size, 16u);
  EXPECT_GT(interner.stats().evictions + cache.stats().evictions, 0u);
}

}  // namespace
}  // namespace jsonsi
