// Shared helper for property-based tests: deterministic random JSON values
// covering every construct (nested records, arrays, mixed content, all basic
// types), keyed by a seed so failures reproduce exactly.

#ifndef JSONSI_TESTS_RANDOM_VALUE_GEN_H_
#define JSONSI_TESTS_RANDOM_VALUE_GEN_H_

#include <string>
#include <vector>

#include "json/value.h"
#include "support/rng.h"

namespace jsonsi::testing {

struct RandomValueOptions {
  size_t max_depth = 4;
  size_t max_fields = 5;
  size_t max_elements = 5;
  /// Probability that a non-leaf position nests a record/array.
  double branch_probability = 0.55;
};

inline json::ValueRef RandomValue(Rng& rng, const RandomValueOptions& opts,
                                  size_t depth = 0) {
  const bool can_branch = depth < opts.max_depth;
  if (can_branch && rng.Chance(opts.branch_probability)) {
    if (rng.Chance(0.5)) {
      // Record with distinct short keys drawn from a small pool so that
      // fusion finds both matching and non-matching keys across samples.
      static const char* kKeys[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
      size_t n = rng.Below(opts.max_fields + 1);
      std::vector<json::Field> fields;
      std::vector<bool> used(8, false);
      for (size_t i = 0; i < n; ++i) {
        size_t k = rng.Below(8);
        if (used[k]) continue;
        used[k] = true;
        fields.push_back({kKeys[k], RandomValue(rng, opts, depth + 1)});
      }
      return json::Value::RecordUnchecked(std::move(fields));
    }
    size_t n = rng.Below(opts.max_elements + 1);
    std::vector<json::ValueRef> elements;
    elements.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      elements.push_back(RandomValue(rng, opts, depth + 1));
    }
    return json::Value::Array(std::move(elements));
  }
  switch (rng.Below(4)) {
    case 0:
      return json::Value::Null();
    case 1:
      return json::Value::Bool(rng.Chance(0.5));
    case 2:
      return json::Value::Num(static_cast<double>(rng.Range(-1000, 1000)));
    default:
      return json::Value::Str(rng.Ident(1 + rng.Below(6)));
  }
}

inline json::ValueRef RandomValue(uint64_t seed,
                                  const RandomValueOptions& opts = {}) {
  Rng rng(seed);
  return RandomValue(rng, opts);
}

inline std::vector<json::ValueRef> RandomValues(
    uint64_t seed, size_t count, const RandomValueOptions& opts = {}) {
  Rng rng(seed);
  std::vector<json::ValueRef> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(RandomValue(rng, opts));
  return out;
}

}  // namespace jsonsi::testing

#endif  // JSONSI_TESTS_RANDOM_VALUE_GEN_H_
