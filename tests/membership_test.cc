// Tests for the semantics witness `V in [[T]]` (Section 4 semantics):
// closed records, optional fields, exact vs starred arrays, unions, eps.

#include <gtest/gtest.h>

#include "json/parser.h"
#include "types/membership.h"
#include "types/type_parser.h"

namespace jsonsi::types {
namespace {

bool In(std::string_view value_text, std::string_view type_text) {
  auto v = json::Parse(value_text);
  auto t = ParseType(type_text);
  EXPECT_TRUE(v.ok()) << value_text << ": " << v.status();
  EXPECT_TRUE(t.ok()) << type_text << ": " << t.status();
  return Matches(*v.value(), *t.value());
}

TEST(MembershipTest, Basics) {
  EXPECT_TRUE(In("null", "Null"));
  EXPECT_TRUE(In("true", "Bool"));
  EXPECT_TRUE(In("1.5", "Num"));
  EXPECT_TRUE(In("\"x\"", "Str"));
  EXPECT_FALSE(In("null", "Bool"));
  EXPECT_FALSE(In("1", "Str"));
  EXPECT_FALSE(In("\"1\"", "Num"));
}

TEST(MembershipTest, EmptyTypeHasNoMembers) {
  EXPECT_FALSE(In("null", "Empty"));
  EXPECT_FALSE(In("{}", "Empty"));
  EXPECT_FALSE(In("[]", "Empty"));
}

TEST(MembershipTest, Unions) {
  EXPECT_TRUE(In("1", "Num + Str"));
  EXPECT_TRUE(In("\"s\"", "Num + Str"));
  EXPECT_FALSE(In("true", "Num + Str"));
}

// ---------------------------------------------------------------- records --

TEST(MembershipTest, ExactRecord) {
  EXPECT_TRUE(In(R"({"a":1,"b":"s"})", "{a: Num, b: Str}"));
  EXPECT_FALSE(In(R"({"a":1})", "{a: Num, b: Str}"));        // missing b
  EXPECT_FALSE(In(R"({"a":1,"b":"s","c":0})", "{a: Num, b: Str}"));  // extra
  EXPECT_FALSE(In(R"({"a":"s","b":"s"})", "{a: Num, b: Str}"));  // wrong type
}

TEST(MembershipTest, OptionalFieldsMayBeAbsent) {
  EXPECT_TRUE(In(R"({"a":1})", "{a: Num, b: Str?}"));
  EXPECT_TRUE(In(R"({"a":1,"b":"s"})", "{a: Num, b: Str?}"));
  // But when present they must match.
  EXPECT_FALSE(In(R"({"a":1,"b":2})", "{a: Num, b: Str?}"));
}

TEST(MembershipTest, PaperSectionFourExample) {
  // {l: Num?, m: (Str + Null)} from Section 4.
  EXPECT_TRUE(In(R"({"m":"s"})", "{l: Num?, m: (Str + Null)}"));
  EXPECT_TRUE(In(R"({"l":3,"m":null})", "{l: Num?, m: (Str + Null)}"));
  EXPECT_FALSE(In(R"({"l":3})", "{l: Num?, m: (Str + Null)}"));
  EXPECT_FALSE(In(R"({"l":"x","m":null})", "{l: Num?, m: (Str + Null)}"));
}

TEST(MembershipTest, EmptyRecordType) {
  EXPECT_TRUE(In("{}", "{}"));
  EXPECT_FALSE(In(R"({"a":1})", "{}"));
  EXPECT_TRUE(In("{}", "{a: Num?}"));
}

TEST(MembershipTest, NonRecordValuesFailRecordTypes) {
  EXPECT_FALSE(In("[]", "{}"));
  EXPECT_FALSE(In("1", "{a: Num?}"));
}

// ----------------------------------------------------------------- arrays --

TEST(MembershipTest, ExactArrays) {
  EXPECT_TRUE(In("[1,\"s\"]", "[Num, Str]"));
  EXPECT_FALSE(In("[1]", "[Num, Str]"));          // wrong length
  EXPECT_FALSE(In("[\"s\",1]", "[Num, Str]"));    // wrong order
  EXPECT_TRUE(In("[]", "[]"));
  EXPECT_FALSE(In("[1]", "[]"));
}

TEST(MembershipTest, StarredArrays) {
  EXPECT_TRUE(In("[]", "[(Num)*]"));
  EXPECT_TRUE(In("[1,2,3]", "[(Num)*]"));
  EXPECT_FALSE(In("[1,\"s\"]", "[(Num)*]"));
  EXPECT_TRUE(In("[1,\"s\"]", "[(Num + Str)*]"));
}

TEST(MembershipTest, EmptyStarMatchesOnlyEmptyArray) {
  // [[Empty*]] = { [] } — the paper's footnote about eps.
  EXPECT_TRUE(In("[]", "[(Empty)*]"));
  EXPECT_FALSE(In("[null]", "[(Empty)*]"));
}

TEST(MembershipTest, MixedContentStar) {
  // The Section 2 simplification target: (Str + {E: Str, F: Num})*.
  const char* type = "[(Str + {E: Str, F: Num})*]";
  EXPECT_TRUE(In(R"(["abc","cde",{"E":"fr","F":12}])", type));
  EXPECT_TRUE(In(R"([{"E":"fr","F":12},"abc","cde"])", type));  // order-free
  EXPECT_FALSE(In(R"([true])", type));
}

TEST(MembershipTest, NestedStructures) {
  const char* type = "{user: {name: Str, tags: [(Str)*]}, n: Num?}";
  EXPECT_TRUE(In(R"({"user":{"name":"x","tags":["a","b"]}})", type));
  EXPECT_FALSE(In(R"({"user":{"name":"x","tags":["a",1]}})", type));
}

}  // namespace
}  // namespace jsonsi::types
