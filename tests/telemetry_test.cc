// Tests for the telemetry subsystem: metric exactness under concurrency,
// span nesting through the Chrome exporter (round-tripped with this repo's
// own JSON parser), allocation-freedom of the hot paths, and the file sink.
//
// This binary replaces global operator new/delete with counting versions so
// the zero-allocation guarantees of the disabled path (and of the enabled
// counter/histogram path after registration) are asserted, not assumed.

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fusion/fuse.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "telemetry/telemetry.h"

namespace {

std::atomic<uint64_t> g_alloc_count{0};

}  // namespace

// The replaced operators pair malloc with free internally; GCC's
// -Wmismatched-new-delete cannot see that the replacement makes the pairing
// consistent and flags inlined call sites, so it is silenced for this block.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;  // aligned_alloc rule
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace jsonsi {
namespace {

using telemetry::Histogram;
using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;
using telemetry::SpanRecord;
using telemetry::TraceRecorder;

// Every test starts enabled on a zeroed registry and leaves telemetry
// disabled, so tests cannot observe one another's metrics.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetAll();
    TraceRecorder::Global().Drain();
    telemetry::SetEnabled(true);
  }
  void TearDown() override {
    telemetry::SetEnabled(false);
    MetricsRegistry::Global().ResetAll();
    TraceRecorder::Global().Drain();
  }
};

TEST_F(TelemetryTest, CounterIsExactAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  auto& counter = MetricsRegistry::Global().GetCounter("test.concurrent");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST_F(TelemetryTest, HistogramIsExactAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  auto& hist = MetricsRegistry::Global().GetHistogram("test.hist");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& t : threads) t.join();

  const uint64_t n = kThreads * kPerThread;
  auto snap = hist.Snapshot();
  EXPECT_EQ(snap.count, n);
  EXPECT_EQ(snap.sum, n * (n - 1) / 2);  // sum of 0..n-1, recorded once each
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, n - 1);
  uint64_t bucket_total = 0;
  for (const auto& [le, count] : snap.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, n);
}

TEST_F(TelemetryTest, BucketIndexMatchesBounds) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  const uint64_t probes[] = {0, 1, 7, 8, 1000, UINT64_MAX};
  for (uint64_t v : probes) {
    size_t k = Histogram::BucketIndex(v);
    ASSERT_LT(k, Histogram::kNumBuckets);
    EXPECT_LE(v, Histogram::BucketUpperBound(k));
    if (k > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(k - 1));
    }
  }
}

TEST_F(TelemetryTest, DisabledMutationsAreInvisible) {
  auto& counter = MetricsRegistry::Global().GetCounter("test.disabled");
  auto& hist = MetricsRegistry::Global().GetHistogram("test.disabled_hist");
  telemetry::SetEnabled(false);
  counter.Add(7);
  hist.Record(7);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(hist.Count(), 0u);
}

TEST_F(TelemetryTest, SpanNestingRoundTripsThroughChromeExporter) {
  {
    JSONSI_SPAN("outer");
    for (int i = 0; i < 2; ++i) {
      JSONSI_SPAN("inner");
    }
  }
  std::vector<SpanRecord> spans = TraceRecorder::Global().Drain();
  ASSERT_EQ(spans.size(), 3u);
  // Drain sorts by start time: the outer span opened first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);

  // Round-trip through the exporter using this repo's own parser.
  std::string trace_json = telemetry::SpansToChromeTrace(spans);
  auto doc = json::Parse(trace_json);
  ASSERT_TRUE(doc.ok()) << doc.status();
  const json::Value* events = doc.value()->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->elements().size(), 3u);

  double outer_start = 0, outer_end = 0;
  for (const auto& ev : events->elements()) {
    ASSERT_TRUE(ev->is_record());
    EXPECT_EQ(ev->Find("ph")->str_value(), "X");
    EXPECT_EQ(ev->Find("cat")->str_value(), "jsonsi");
    if (ev->Find("name")->str_value() == "outer") {
      outer_start = ev->Find("ts")->num_value();
      outer_end = outer_start + ev->Find("dur")->num_value();
      EXPECT_EQ(ev->Find("args")->Find("depth")->num_value(), 0);
    }
  }
  int inner_count = 0;
  for (const auto& ev : events->elements()) {
    if (ev->Find("name")->str_value() != "inner") continue;
    ++inner_count;
    EXPECT_EQ(ev->Find("args")->Find("depth")->num_value(), 1);
    double ts = ev->Find("ts")->num_value();
    double dur = ev->Find("dur")->num_value();
    // Nested spans lie within their parent's interval.
    EXPECT_GE(ts, outer_start);
    EXPECT_LE(ts + dur, outer_end);
    // All three spans ran on this thread.
    EXPECT_EQ(ev->Find("tid")->num_value(),
              events->elements()[0]->Find("tid")->num_value());
  }
  EXPECT_EQ(inner_count, 2);
}

TEST_F(TelemetryTest, FullRingDropsOldestAndCountsDrops) {
  TraceRecorder::Global().SetRingCapacity(4);
  // A fresh thread gets the new, smaller ring.
  std::thread recorder([] {
    for (int i = 0; i < 10; ++i) {
      JSONSI_SPAN("ring");
    }
  });
  recorder.join();
  EXPECT_EQ(TraceRecorder::Global().dropped_spans(), 6u);
  std::vector<SpanRecord> spans = TraceRecorder::Global().Drain();
  EXPECT_EQ(spans.size(), 4u);
  TraceRecorder::Global().SetRingCapacity(4096);
}

TEST_F(TelemetryTest, DisabledHotPathDoesNotAllocate) {
  // Register up front: first GetX for a name allocates by design.
  auto& counter = MetricsRegistry::Global().GetCounter("test.noalloc");
  auto& hist = MetricsRegistry::Global().GetHistogram("test.noalloc_hist");
  telemetry::SetEnabled(false);

  uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    counter.Increment();
    hist.Record(static_cast<uint64_t>(i));
    JSONSI_SPAN("noalloc");
  }
  uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

TEST_F(TelemetryTest, EnabledMetricsDoNotAllocateAfterRegistration) {
  auto& counter = MetricsRegistry::Global().GetCounter("test.noalloc_on");
  auto& hist = MetricsRegistry::Global().GetHistogram("test.noalloc_on_hist");
  counter.Increment();  // warm the thread's shard index
  hist.Record(1);

  uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    counter.Increment();
    hist.Record(static_cast<uint64_t>(i));
  }
  uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

TEST_F(TelemetryTest, DisabledFusionRecordsNothing) {
  telemetry::SetEnabled(false);
  auto a = json::Parse(R"({"a": 1, "b": "x"})");
  auto b = json::Parse(R"({"a": null, "c": [1, 2]})");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  types::TypeRef fused = fusion::Fuse(inference::InferType(*a.value()),
                                      inference::InferType(*b.value()));
  ASSERT_NE(fused, nullptr);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.CounterValue("fuse.calls"), 0u);
  EXPECT_EQ(snap.CounterValue("infer.values"), 0u);
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(value, 0u) << name;
  }
}

TEST_F(TelemetryTest, MetricsJsonRoundTripsThroughOwnParser) {
  MetricsRegistry::Global().GetCounter("json.counter").Add(42);
  MetricsRegistry::Global().GetGauge("json.gauge").Set(-7);
  auto& hist = MetricsRegistry::Global().GetHistogram("json.hist");
  hist.Record(1);
  hist.Record(100);

  std::string text =
      telemetry::MetricsToJson(MetricsRegistry::Global().Snapshot());
  auto doc = json::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  const json::Value* counters = doc.value()->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("json.counter")->num_value(), 42);
  EXPECT_EQ(doc.value()->Find("gauges")->Find("json.gauge")->num_value(), -7);
  const json::Value* h = doc.value()->Find("histograms")->Find("json.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Find("count")->num_value(), 2);
  EXPECT_EQ(h->Find("sum")->num_value(), 101);
  EXPECT_EQ(h->Find("min")->num_value(), 1);
  EXPECT_EQ(h->Find("max")->num_value(), 100);
}

TEST_F(TelemetryTest, PrometheusExportMangledNamesAndCumulativeBuckets) {
  MetricsRegistry::Global().GetCounter("prom.counter").Add(3);
  auto& hist = MetricsRegistry::Global().GetHistogram("prom.hist");
  hist.Record(1);
  hist.Record(2);
  hist.Record(1000);

  std::string text =
      telemetry::MetricsToPrometheus(MetricsRegistry::Global().Snapshot());
  EXPECT_NE(text.find("# TYPE jsonsi_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("jsonsi_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("jsonsi_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("jsonsi_prom_hist_count 3"), std::string::npos);
  EXPECT_NE(text.find("jsonsi_prom_hist_sum 1003"), std::string::npos);
}

TEST_F(TelemetryTest, FileSinkWritesBothOutputs) {
  MetricsRegistry::Global().GetCounter("sink.counter").Increment();
  {
    JSONSI_SPAN("sink");
  }
  std::string dir = ::testing::TempDir();
  std::string metrics_path = dir + "/telemetry_test_metrics.json";
  std::string trace_path = dir + "/telemetry_test_trace.json";
  telemetry::FileSink sink(metrics_path, trace_path);
  ASSERT_TRUE(telemetry::Flush(sink).ok());

  for (const std::string& path : {metrics_path, trace_path}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto doc = json::Parse(buffer.str());
    EXPECT_TRUE(doc.ok()) << path << ": " << doc.status();
  }
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST_F(TelemetryTest, NullSinkConsumesFlush) {
  MetricsRegistry::Global().GetCounter("null.counter").Increment();
  telemetry::NullSink sink;
  EXPECT_TRUE(telemetry::Flush(sink).ok());
}

TEST_F(TelemetryTest, StringSinkSeesMetricsRegisteredAfterFirstFlush) {
  // A live scrape endpoint re-snapshots per flush: a counter that first
  // exists after an earlier export must appear in the next one.
  telemetry::StringSink sink(telemetry::StringSink::MetricsFormat::kPrometheus);
  MetricsRegistry::Global().GetCounter("early.counter").Increment();
  ASSERT_TRUE(telemetry::Flush(sink).ok());
  EXPECT_NE(sink.metrics_text().find("jsonsi_early_counter 1"),
            std::string::npos);
  EXPECT_EQ(sink.metrics_text().find("jsonsi_late_counter"),
            std::string::npos);

  MetricsRegistry::Global().GetCounter("late.counter").Add(7);
  ASSERT_TRUE(telemetry::Flush(sink).ok());
  EXPECT_NE(sink.metrics_text().find("jsonsi_early_counter 1"),
            std::string::npos);
  EXPECT_NE(sink.metrics_text().find("jsonsi_late_counter 7"),
            std::string::npos);

  // The JSON-format sink renders the same snapshot as parseable JSON.
  telemetry::StringSink json_sink;
  ASSERT_TRUE(telemetry::Flush(json_sink).ok());
  auto doc = json::Parse(json_sink.metrics_text());
  EXPECT_TRUE(doc.ok()) << doc.status();
  EXPECT_NE(json_sink.metrics_text().find("late.counter"), std::string::npos);
}

TEST_F(TelemetryTest, GlobalMetricsPrometheusIsTheLiveScrapeView) {
  MetricsRegistry::Global().GetCounter("scrape.counter").Add(5);
  const std::string first = telemetry::GlobalMetricsPrometheus();
  EXPECT_EQ(first, telemetry::MetricsToPrometheus(
                       MetricsRegistry::Global().Snapshot()));
  EXPECT_NE(first.find("jsonsi_scrape_counter 5"), std::string::npos);

  // Counters registered after that first render show up in the next scrape
  // — the /metrics endpoint never serves a stale registry.
  MetricsRegistry::Global().GetCounter("scrape.after").Increment();
  const std::string second = telemetry::GlobalMetricsPrometheus();
  EXPECT_NE(second.find("jsonsi_scrape_after 1"), std::string::npos);
}

}  // namespace
}  // namespace jsonsi
