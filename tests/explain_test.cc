// Tests for mismatch explanation: reason/path quality per failure mode and
// the consistency property Explain(v,t).has_value() == !Matches(v,t).

#include <gtest/gtest.h>

#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "random_value_gen.h"
#include "types/explain.h"
#include "types/membership.h"
#include "types/type_parser.h"

namespace jsonsi::types {
namespace {

json::ValueRef V(std::string_view text) {
  auto r = json::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

TypeRef T(std::string_view text) {
  auto r = ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

Mismatch MustExplain(std::string_view value, std::string_view type) {
  auto m = Explain(*V(value), *T(type));
  EXPECT_TRUE(m.has_value()) << value << " vs " << type;
  return m.value_or(Mismatch{});
}

TEST(ExplainTest, MatchYieldsNothing) {
  EXPECT_FALSE(Explain(*V("1"), *T("Num")).has_value());
  EXPECT_FALSE(Explain(*V(R"({"a": [1, "x"]})"),
                       *T("{a: [(Num + Str)*]}")).has_value());
}

TEST(ExplainTest, BasicKindMismatch) {
  Mismatch m = MustExplain("true", "Num");
  EXPECT_EQ(m.path, "");
  EXPECT_EQ(m.reason, "expected Num, found bool");
}

TEST(ExplainTest, MissingMandatoryField) {
  Mismatch m = MustExplain(R"({"a": 1})", "{a: Num, b: Str}");
  EXPECT_EQ(m.path, "");
  EXPECT_EQ(m.reason, "missing mandatory field \"b\"");
}

TEST(ExplainTest, UnexpectedField) {
  Mismatch m = MustExplain(R"({"a": 1, "zz": 2})", "{a: Num}");
  EXPECT_EQ(m.reason,
            "unexpected field \"zz\" (not declared by the schema)");
}

TEST(ExplainTest, NestedPathIsReported) {
  Mismatch m = MustExplain(R"({"user": {"name": 42}})",
                           "{user: {name: Str}}");
  EXPECT_EQ(m.path, "user.name");
  EXPECT_EQ(m.reason, "expected Str, found num");
}

TEST(ExplainTest, ArrayElementIndexIsReported) {
  Mismatch m = MustExplain(R"({"xs": [1, 2, "three"]})", "{xs: [(Num)*]}");
  EXPECT_EQ(m.path, "xs[2]");
  EXPECT_EQ(m.reason, "expected Num, found str");
}

TEST(ExplainTest, ExactArrayLengthMismatch) {
  Mismatch m = MustExplain("[1]", "[Num, Num]");
  EXPECT_EQ(m.reason, "expected exactly 2 array elements, found 1");
}

TEST(ExplainTest, UnionDescendsIntoMatchingKind) {
  // The record alternative explains the failure, not the whole union.
  Mismatch m = MustExplain(R"({"a": true})", "Num + {a: Str}");
  EXPECT_EQ(m.path, "a");
  EXPECT_EQ(m.reason, "expected Str, found bool");
}

TEST(ExplainTest, UnionWithNoMatchingKind) {
  Mismatch m = MustExplain("true", "Num + Str");
  EXPECT_EQ(m.path, "");
  EXPECT_EQ(m.reason, "expected Num + Str, found bool");
}

TEST(ExplainTest, EmptyType) {
  Mismatch m = MustExplain("null", "Empty");
  EXPECT_EQ(m.reason, "no value can match the empty type");
}

TEST(ExplainTest, NonRecordAgainstRecordType) {
  Mismatch m = MustExplain("[1]", "{a: Num?}");
  EXPECT_EQ(m.reason, "expected a record, found array");
}

class ExplainConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExplainConsistency, AgreesWithMatches) {
  // Pit random values against schemas fused from OTHER random values; the
  // presence of an explanation must coincide exactly with non-membership.
  auto values = jsonsi::testing::RandomValues(GetParam(), 30);
  fusion::TreeFuser fuser;
  for (size_t i = 0; i < 15; ++i) {
    fuser.Add(inference::InferType(*values[i]));
  }
  TypeRef schema = fuser.Finish();
  for (const auto& v : values) {
    EXPECT_EQ(Explain(*v, *schema).has_value(), !Matches(*v, *schema));
  }
  // And against each individual inferred type.
  for (size_t i = 0; i < values.size(); ++i) {
    TypeRef t = inference::InferType(*values[i]);
    for (size_t j = 0; j < values.size(); j += 3) {
      EXPECT_EQ(Explain(*values[j], *t).has_value(), !Matches(*values[j], *t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplainConsistency,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace jsonsi::types
