// Determinism tests for the parallel end-to-end pipeline.
//
// The contract (core/schema_inferencer.h): for every thread count, partition
// count, and chunk count, the parallel pipeline produces a schema
// *structurally identical* to the serial num_threads == 1 path — the
// practical consequence of Fuse's associativity/commutativity (Theorems
// 5.4/5.5). Checked here over all four synthetic dataset generators, through
// both the value-level and the text-level (chunk-parallel ingestion) entry
// points, including degraded-mode aborts, plus the streaming inferencer's
// parallel feed with profiling enabled.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/schema_inferencer.h"
#include "core/streaming_inferencer.h"
#include "datagen/generator.h"
#include "engine/parallel_reduce.h"
#include "engine/thread_pool.h"
#include "json/jsonl.h"
#include "json/serializer.h"
#include "types/type.h"

namespace jsonsi {
namespace {

using core::InferenceOptions;
using core::Schema;
using core::SchemaInferencer;
using core::StreamingInferencer;
using core::StreamingOptions;

// ------------------------------------------------------ ParallelTreeReduce

TEST(ParallelTreeReduceTest, MatchesSerialFoldForManySizes) {
  engine::ThreadPool pool(4);
  for (size_t n = 0; n <= 33; ++n) {
    std::vector<int> items(n);
    std::iota(items.begin(), items.end(), 1);
    int expected = std::accumulate(items.begin(), items.end(), 0);
    size_t rounds = 0;
    int got = engine::ParallelTreeReduce(
        pool, items, 0, [](int a, int b) { return a + b; }, &rounds);
    EXPECT_EQ(got, expected) << "n=" << n;
    size_t expected_rounds = 0;
    for (size_t m = n; m > 1; m = (m + 1) / 2) ++expected_rounds;
    EXPECT_EQ(rounds, expected_rounds) << "n=" << n;
  }
}

TEST(ParallelTreeReduceTest, EmptyReturnsIdentity) {
  engine::ThreadPool pool(2);
  EXPECT_EQ(engine::ParallelTreeReduce(pool, std::vector<int>{}, 42,
                                       [](int a, int b) { return a + b; }),
            42);
}

TEST(ParallelTreeReduceTest, PreservesPairwiseBracketing) {
  // A non-commutative combiner (string concatenation) still reduces in the
  // documented fixed bracketing, so the result is deterministic.
  engine::ThreadPool pool(4);
  std::vector<std::string> items = {"a", "b", "c", "d", "e"};
  std::string got = engine::ParallelTreeReduce(
      pool, items, std::string(),
      [](const std::string& a, const std::string& b) { return a + b; });
  EXPECT_EQ(got, "abcde");
}

// ------------------------------------------------------------ batch parity

std::vector<json::ValueRef> GenerateValues(datagen::DatasetId id, size_t n) {
  auto gen = datagen::MakeGenerator(id, /*seed=*/7);
  std::vector<json::ValueRef> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(gen->Generate(i));
  return values;
}

InferenceOptions Threads(size_t n) {
  InferenceOptions o;
  o.num_threads = n;
  o.parallel_ingest_min_bytes = 0;  // exercise chunked ingestion on any size
  return o;
}

void ExpectSchemasIdentical(const Schema& serial, const Schema& parallel) {
  ASSERT_TRUE(serial.type && parallel.type);
  EXPECT_TRUE(types::TypeEquals(serial.type, parallel.type))
      << "serial:   " << serial.ToString() << "\n"
      << "parallel: " << parallel.ToString();
  EXPECT_EQ(serial.stats.record_count, parallel.stats.record_count);
  EXPECT_EQ(serial.stats.distinct_type_count,
            parallel.stats.distinct_type_count);
  EXPECT_EQ(serial.stats.min_type_size, parallel.stats.min_type_size);
  EXPECT_EQ(serial.stats.max_type_size, parallel.stats.max_type_size);
  EXPECT_DOUBLE_EQ(serial.stats.avg_type_size, parallel.stats.avg_type_size);
}

TEST(ParallelPipelineTest, AllGeneratorsMatchSerialAcrossThreadCounts) {
  const datagen::DatasetId ids[] = {
      datagen::DatasetId::kGitHub, datagen::DatasetId::kTwitter,
      datagen::DatasetId::kWikidata, datagen::DatasetId::kNYTimes};
  for (datagen::DatasetId id : ids) {
    auto values = GenerateValues(id, 200);
    Schema serial = SchemaInferencer(Threads(1)).InferFromValues(values);
    for (size_t threads : {2, 3, 4, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      Schema parallel =
          SchemaInferencer(Threads(threads)).InferFromValues(values);
      ExpectSchemasIdentical(serial, parallel);
    }
  }
}

TEST(ParallelPipelineTest, PartitionCountDoesNotChangeResult) {
  auto values = GenerateValues(datagen::DatasetId::kTwitter, 100);
  Schema serial = SchemaInferencer(Threads(1)).InferFromValues(values);
  for (size_t partitions : {1, 2, 3, 7, 64, 1000}) {
    SCOPED_TRACE("partitions=" + std::to_string(partitions));
    InferenceOptions o = Threads(4);
    o.num_partitions = partitions;
    Schema parallel = SchemaInferencer(o).InferFromValues(values);
    ExpectSchemasIdentical(serial, parallel);
  }
}

TEST(ParallelPipelineTest, EmptyAndTinyInputs) {
  for (size_t n : {0, 1, 2, 3}) {
    auto values = GenerateValues(datagen::DatasetId::kGitHub, n);
    Schema serial = SchemaInferencer(Threads(1)).InferFromValues(values);
    Schema parallel = SchemaInferencer(Threads(4)).InferFromValues(values);
    ASSERT_TRUE(serial.type && parallel.type);
    EXPECT_TRUE(types::TypeEquals(serial.type, parallel.type)) << "n=" << n;
    EXPECT_EQ(parallel.stats.record_count, n);
  }
}

// ------------------------------------------- text entry point (chunked I/O)

TEST(ParallelPipelineTest, JsonLinesEntryPointMatchesSerial) {
  const datagen::DatasetId ids[] = {
      datagen::DatasetId::kGitHub, datagen::DatasetId::kTwitter,
      datagen::DatasetId::kWikidata, datagen::DatasetId::kNYTimes};
  for (datagen::DatasetId id : ids) {
    std::string text = json::ToJsonLines(GenerateValues(id, 150));
    json::IngestStats serial_stats, parallel_stats;
    auto serial =
        SchemaInferencer(Threads(1)).InferFromJsonLines(text, &serial_stats);
    auto parallel =
        SchemaInferencer(Threads(4)).InferFromJsonLines(text, &parallel_stats);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    ExpectSchemasIdentical(serial.value(), parallel.value());
    EXPECT_EQ(serial_stats.records, parallel_stats.records);
    EXPECT_EQ(serial_stats.lines_read, parallel_stats.lines_read);
    EXPECT_EQ(serial_stats.bytes_read, parallel_stats.bytes_read);
  }
}

TEST(ParallelPipelineTest, DegradedModeAbortMatchesSerial) {
  // kFail must abort with the identical message and ingestion report
  // whichever chunk the bad line lands in.
  std::string text;
  for (int i = 0; i < 50; ++i) text += "{\"n\":" + std::to_string(i) + "}\n";
  text += "definitely not json\n";
  for (int i = 0; i < 50; ++i) text += "{\"n\":" + std::to_string(i) + "}\n";

  json::IngestStats serial_stats, parallel_stats;
  auto serial =
      SchemaInferencer(Threads(1)).InferFromJsonLines(text, &serial_stats);
  auto parallel =
      SchemaInferencer(Threads(4)).InferFromJsonLines(text, &parallel_stats);
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(serial.status().ToString(), parallel.status().ToString());
  EXPECT_EQ(serial_stats.records, parallel_stats.records);
  EXPECT_EQ(serial_stats.malformed_lines, parallel_stats.malformed_lines);
  EXPECT_EQ(serial_stats.bytes_read, parallel_stats.bytes_read);
}

TEST(ParallelPipelineTest, SkipPolicyMatchesSerialOnDirtyInput) {
  std::string text = "\xEF\xBB\xBF";  // BOM + CRLF + dirt, the works
  for (int i = 0; i < 30; ++i) {
    text += "{\"n\":" + std::to_string(i) + "}\r\n";
    if (i % 7 == 0) text += "dirt\r\n";
    if (i % 11 == 0) text += "\r\n";
  }
  InferenceOptions serial_o = Threads(1);
  serial_o.ingest.on_malformed = json::MalformedLinePolicy::kSkip;
  InferenceOptions parallel_o = Threads(5);
  parallel_o.ingest.on_malformed = json::MalformedLinePolicy::kSkip;

  json::IngestStats serial_stats, parallel_stats;
  auto serial =
      SchemaInferencer(serial_o).InferFromJsonLines(text, &serial_stats);
  auto parallel =
      SchemaInferencer(parallel_o).InferFromJsonLines(text, &parallel_stats);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectSchemasIdentical(serial.value(), parallel.value());
  EXPECT_EQ(serial_stats.malformed_lines, parallel_stats.malformed_lines);
  EXPECT_EQ(serial_stats.blank_lines, parallel_stats.blank_lines);
}

// ------------------------------------------------------ streaming parallel

TEST(StreamingParallelTest, MatchesSerialFeedIncludingProfiler) {
  StreamingOptions o;
  o.profile = true;
  std::string batch1 = json::ToJsonLines(
      GenerateValues(datagen::DatasetId::kGitHub, 80));
  std::string batch2 = json::ToJsonLines(
      GenerateValues(datagen::DatasetId::kTwitter, 80));

  StreamingInferencer serial(o), parallel(o);
  ASSERT_TRUE(serial.AddJsonLines(batch1).ok());
  ASSERT_TRUE(serial.AddJsonLines(batch2).ok());
  ASSERT_TRUE(parallel.AddJsonLinesParallel(batch1, 4).ok());
  ASSERT_TRUE(parallel.AddJsonLinesParallel(batch2, 4).ok());

  EXPECT_EQ(serial.record_count(), parallel.record_count());
  Schema ss = serial.Snapshot();
  Schema ps = parallel.Snapshot();
  EXPECT_TRUE(types::TypeEquals(ss.type, ps.type));
  EXPECT_EQ(ss.stats.distinct_type_count, ps.stats.distinct_type_count);
  EXPECT_EQ(ss.stats.min_type_size, ps.stats.min_type_size);
  EXPECT_EQ(ss.stats.max_type_size, ps.stats.max_type_size);
  EXPECT_DOUBLE_EQ(ss.stats.avg_type_size, ps.stats.avg_type_size);
  // Profiling provenance uses global record ordinals in both paths, so the
  // rendered profiles are textually identical.
  ASSERT_TRUE(serial.profiler() && parallel.profiler());
  EXPECT_EQ(serial.profiler()->ToString(true),
            parallel.profiler()->ToString(true));
  // Ingestion reports agree too.
  EXPECT_EQ(serial.ingest_stats().lines_read,
            parallel.ingest_stats().lines_read);
  EXPECT_EQ(serial.ingest_stats().records, parallel.ingest_stats().records);
  EXPECT_EQ(serial.ingest_stats().bytes_read,
            parallel.ingest_stats().bytes_read);
}

TEST(StreamingParallelTest, RateAbortMatchesSerialAcrossBuffers) {
  StreamingOptions o;
  o.on_malformed = json::MalformedLinePolicy::kFailAboveRate;
  o.max_error_rate = 0.2;
  o.min_lines_for_rate = 10;
  std::string clean;
  for (int i = 0; i < 20; ++i) clean += "{\"n\":" + std::to_string(i) + "}\n";
  std::string dirty;
  for (int i = 0; i < 10; ++i) dirty += "junk-" + std::to_string(i) + "\n";

  StreamingInferencer serial(o), parallel(o);
  ASSERT_TRUE(serial.AddJsonLines(clean).ok());
  ASSERT_TRUE(parallel.AddJsonLinesParallel(clean, 4).ok());
  Status serial_st = serial.AddJsonLines(dirty);
  Status parallel_st = parallel.AddJsonLinesParallel(dirty, 4);
  ASSERT_FALSE(serial_st.ok());
  ASSERT_FALSE(parallel_st.ok());
  EXPECT_EQ(serial_st.ToString(), parallel_st.ToString());
  EXPECT_EQ(serial.record_count(), parallel.record_count());
  EXPECT_EQ(serial.ingest_stats().malformed_lines,
            parallel.ingest_stats().malformed_lines);
  EXPECT_TRUE(
      types::TypeEquals(serial.Snapshot().type, parallel.Snapshot().type));
}

TEST(StreamingParallelTest, ZeroAndOneThreadFallBackToSerial) {
  std::string text = "{\"a\":1}\n{\"a\":2}\n";
  StreamingInferencer a, b, c;
  ASSERT_TRUE(a.AddJsonLines(text).ok());
  ASSERT_TRUE(b.AddJsonLinesParallel(text, 1).ok());
  ASSERT_TRUE(c.AddJsonLinesParallel(text, 0).ok());  // hw concurrency
  EXPECT_TRUE(types::TypeEquals(a.Snapshot().type, b.Snapshot().type));
  EXPECT_TRUE(types::TypeEquals(a.Snapshot().type, c.Snapshot().type));
  EXPECT_EQ(a.record_count(), b.record_count());
  EXPECT_EQ(a.record_count(), c.record_count());
}

}  // namespace
}  // namespace jsonsi
