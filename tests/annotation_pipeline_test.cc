// End-to-end determinism tests for annotated inference.
//
// The contract (core/schema_inferencer.h): with InferenceOptions::annotate
// set, the serial path, the threaded value path, the chunk-parallel text
// path and the DOM (direct_infer = false) path all produce EXACTLY the same
// annotation tree and the same refined tagged unions — the annotation is a
// commutative-monoid fold, so Theorems 5.4/5.5 extend to it verbatim.
// Checked over all four synthetic dataset generators, through degraded-mode
// aborts (malformed lines must not pollute the accumulators), and through
// Schema::Merge.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "annotate/annotation.h"
#include "annotate/refine.h"
#include "core/schema_inferencer.h"
#include "datagen/generator.h"
#include "json/jsonl.h"
#include "json/serializer.h"

namespace jsonsi {
namespace {

using annotate::Annotation;
using annotate::RefinementMap;
using annotate::RefineTaggedUnions;
using core::InferenceOptions;
using core::Schema;
using core::SchemaInferencer;

std::vector<json::ValueRef> GenerateValues(datagen::DatasetId id, size_t n) {
  auto gen = datagen::MakeGenerator(id, /*seed=*/7);
  std::vector<json::ValueRef> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(gen->Generate(i));
  return values;
}

const datagen::DatasetId kCorpora[] = {
    datagen::DatasetId::kGitHub, datagen::DatasetId::kTwitter,
    datagen::DatasetId::kWikidata, datagen::DatasetId::kNYTimes};

// Asserts two annotated schemas agree on type, annotation tree, and the
// refinements derived from it.
void ExpectSameAnnotatedSchema(const Schema& expected, const Schema& got,
                               const std::string& label) {
  EXPECT_TRUE(expected.type->Equals(*got.type)) << label;
  ASSERT_NE(expected.annotation, nullptr) << label;
  ASSERT_NE(got.annotation, nullptr) << label;
  EXPECT_TRUE(expected.annotation->Equals(*got.annotation)) << label;
  EXPECT_TRUE(RefineTaggedUnions(*expected.annotation) ==
              RefineTaggedUnions(*got.annotation))
      << label;
}

TEST(AnnotationPipelineTest, ValuePathSerialVsThreaded) {
  for (datagen::DatasetId id : kCorpora) {
    auto values = GenerateValues(id, 150);
    InferenceOptions serial;
    serial.num_threads = 1;
    serial.annotate = true;
    Schema expected = SchemaInferencer(serial).InferFromValues(values);
    ASSERT_NE(expected.annotation, nullptr);
    EXPECT_EQ(expected.annotation->count, values.size());

    for (size_t threads : {2, 4, 8}) {
      for (size_t partitions : {0, 3, 7}) {
        InferenceOptions par = serial;
        par.num_threads = threads;
        par.num_partitions = partitions;
        Schema got = SchemaInferencer(par).InferFromValues(values);
        ExpectSameAnnotatedSchema(
            expected, got,
            "dataset=" + std::to_string(static_cast<int>(id)) +
                " threads=" + std::to_string(threads) +
                " partitions=" + std::to_string(partitions));
      }
    }
  }
}

TEST(AnnotationPipelineTest, TextPathSerialVsChunkedVsDom) {
  for (datagen::DatasetId id : kCorpora) {
    std::string text = json::ToJsonLines(GenerateValues(id, 120));
    InferenceOptions serial;
    serial.num_threads = 1;
    serial.annotate = true;
    auto expected = SchemaInferencer(serial).InferFromJsonLines(text);
    ASSERT_TRUE(expected.ok()) << expected.status().message();

    // Chunk-parallel direct ingestion (forced onto tiny inputs).
    for (size_t threads : {2, 4}) {
      InferenceOptions chunked = serial;
      chunked.num_threads = threads;
      chunked.parallel_ingest_min_bytes = 0;
      chunked.chunks_per_thread = 3;
      auto got = SchemaInferencer(chunked).InferFromJsonLines(text);
      ASSERT_TRUE(got.ok()) << got.status().message();
      ExpectSameAnnotatedSchema(expected.value(), got.value(),
                                "chunked threads=" + std::to_string(threads));
    }

    // DOM pipeline (parse then infer), serial and parallel.
    for (size_t threads : {1, 4}) {
      InferenceOptions dom = serial;
      dom.direct_infer = false;
      dom.num_threads = threads;
      dom.parallel_ingest_min_bytes = 0;
      auto got = SchemaInferencer(dom).InferFromJsonLines(text);
      ASSERT_TRUE(got.ok()) << got.status().message();
      ExpectSameAnnotatedSchema(expected.value(), got.value(),
                                "dom threads=" + std::to_string(threads));
    }
  }
}

TEST(AnnotationPipelineTest, MalformedLinesDoNotPolluteAccumulators) {
  // kSkip: the annotation must reflect only the well-formed lines, and must
  // match across serial / chunked / DOM runs.
  std::string text =
      "{\"type\":\"a\",\"x\":1}\n"
      "not json at all\n"
      "{\"type\":\"b\",\"y\":\"s\"}\n"
      "{\"type\":\"a\",\"x\":7\n"  // truncated record
      "{\"type\":\"b\",\"y\":\"t\"}\n";
  InferenceOptions serial;
  serial.num_threads = 1;
  serial.annotate = true;
  serial.ingest.on_malformed = json::MalformedLinePolicy::kSkip;
  auto expected = SchemaInferencer(serial).InferFromJsonLines(text);
  ASSERT_TRUE(expected.ok()) << expected.status().message();
  ASSERT_NE(expected.value().annotation, nullptr);
  EXPECT_EQ(expected.value().annotation->count, 3u);

  for (bool direct : {true, false}) {
    for (size_t threads : {1, 2, 4}) {
      InferenceOptions opts = serial;
      opts.direct_infer = direct;
      opts.num_threads = threads;
      opts.parallel_ingest_min_bytes = 0;
      opts.chunks_per_thread = 2;
      auto got = SchemaInferencer(opts).InferFromJsonLines(text);
      ASSERT_TRUE(got.ok()) << got.status().message();
      ExpectSameAnnotatedSchema(expected.value(), got.value(),
                                std::string("direct=") +
                                    (direct ? "1" : "0") +
                                    " threads=" + std::to_string(threads));
    }
  }
}

TEST(AnnotationPipelineTest, FailAboveRateAbortKeepsIncludedPrefixOnly) {
  // Enough malformed lines to trip kFailAboveRate. The run fails, so no
  // schema/annotation escapes — the point is parity of the failure across
  // serial and chunked runs (no partial annotation can leak out).
  std::string text;
  for (int i = 0; i < 20; ++i) {
    text += (i % 2 == 0) ? "{\"x\":" + std::to_string(i) + "}\n"
                         : "broken\n";
  }
  for (size_t threads : {1, 4}) {
    InferenceOptions opts;
    opts.num_threads = threads;
    opts.annotate = true;
    opts.parallel_ingest_min_bytes = 0;
    opts.ingest.on_malformed = json::MalformedLinePolicy::kFailAboveRate;
    opts.ingest.max_error_rate = 0.1;
    auto got = SchemaInferencer(opts).InferFromJsonLines(text);
    EXPECT_FALSE(got.ok()) << "threads=" << threads;
  }
}

TEST(AnnotationPipelineTest, RefinementDetectedEndToEnd) {
  std::string text =
      "{\"type\":\"a\",\"x\":1}\n"
      "{\"type\":\"a\",\"x\":2}\n"
      "{\"type\":\"b\",\"y\":\"s\"}\n";
  for (size_t threads : {1, 4}) {
    InferenceOptions opts;
    opts.num_threads = threads;
    opts.annotate = true;
    opts.parallel_ingest_min_bytes = 0;
    auto schema = SchemaInferencer(opts).InferFromJsonLines(text);
    ASSERT_TRUE(schema.ok());
    ASSERT_NE(schema.value().annotation, nullptr);
    RefinementMap m = RefineTaggedUnions(*schema.value().annotation);
    ASSERT_EQ(m.count(""), 1u) << "threads=" << threads;
    EXPECT_EQ(m.at("").discriminator, "type");
    EXPECT_EQ(m.at("").variants.size(), 2u);
  }
}

TEST(AnnotationPipelineTest, UnannotatedRunsCarryNoAnnotation) {
  InferenceOptions opts;  // annotate defaults to false
  auto schema = SchemaInferencer(opts).InferFromJsonLines("{\"x\":1}\n");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value().annotation, nullptr);
}

TEST(AnnotationPipelineTest, MergeFoldsAnnotations) {
  auto values = GenerateValues(datagen::DatasetId::kGitHub, 80);
  std::vector<json::ValueRef> first(values.begin(), values.begin() + 50);
  std::vector<json::ValueRef> second(values.begin() + 50, values.end());
  InferenceOptions opts;
  opts.num_threads = 1;
  opts.annotate = true;
  SchemaInferencer inferencer(opts);
  Schema whole = inferencer.InferFromValues(values);
  Schema merged = SchemaInferencer::Merge(inferencer.InferFromValues(first),
                                          inferencer.InferFromValues(second));
  ExpectSameAnnotatedSchema(whole, merged, "merge");

  // Merging with an un-annotated schema keeps the annotated side's tree.
  InferenceOptions plain_opts;
  plain_opts.num_threads = 1;
  Schema plain = SchemaInferencer(plain_opts).InferFromValues(second);
  Schema mixed = SchemaInferencer::Merge(inferencer.InferFromValues(first),
                                         plain);
  ASSERT_NE(mixed.annotation, nullptr);
  EXPECT_EQ(mixed.annotation->count, first.size());
}

TEST(AnnotationPipelineTest, AnnotationDoesNotChangeTheSchema) {
  for (datagen::DatasetId id : kCorpora) {
    std::string text = json::ToJsonLines(GenerateValues(id, 60));
    InferenceOptions plain;
    plain.num_threads = 1;
    auto without = SchemaInferencer(plain).InferFromJsonLines(text);
    InferenceOptions annotated = plain;
    annotated.annotate = true;
    auto with = SchemaInferencer(annotated).InferFromJsonLines(text);
    ASSERT_TRUE(without.ok());
    ASSERT_TRUE(with.ok());
    EXPECT_TRUE(without.value().type->Equals(*with.value().type));
  }
}

}  // namespace
}  // namespace jsonsi
