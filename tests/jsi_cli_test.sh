#!/bin/sh
# Smoke test for the jsi CLI: every subcommand on generated data.
set -e
JSI="$1"
TMP="${TMPDIR:-/tmp}/jsi_cli_test.$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT

"$JSI" gen github 50 > "$TMP/gh.jsonl"
test "$(wc -l < "$TMP/gh.jsonl")" = "50"

"$JSI" infer "$TMP/gh.jsonl" --stats > "$TMP/schema.txt" 2> "$TMP/stats.txt"
grep -q "base" "$TMP/schema.txt"
grep -q "records:" "$TMP/stats.txt"

"$JSI" paths "$TMP/gh.jsonl" | grep -q "base.repo.name"

# check: the inferred schema accepts its own data...
"$JSI" check "$TMP/gh.jsonl" --schema "$(cat "$TMP/schema.txt")" > "$TMP/check.txt"
grep -q "50/50 records match" "$TMP/check.txt"
# ...and a wrong schema fails with exit code 2.
if "$JSI" check "$TMP/gh.jsonl" --schema '{nope: Num}' > /dev/null 2>&1; then
  echo "expected check to fail"; exit 1
fi

"$JSI" export "$TMP/gh.jsonl" | grep -q '"\$schema"'
"$JSI" annotate "$TMP/gh.jsonl" | grep -q "first@"
"$JSI" gen wikidata 300 | "$JSI" analyze - | grep -q "claims"
"$JSI" expand "$TMP/gh.jsonl" --pattern '*.repo.name' | grep -q "base.repo.name"

echo '{a: Num}' > "$TMP/old.types"
echo '{a: (Num + Str)}' > "$TMP/new.types"
if "$JSI" diff "$TMP/old.types" "$TMP/new.types" > "$TMP/diff.txt"; then
  echo "expected diff to exit 2"; exit 1
fi
grep -q "kinds-broadened" "$TMP/diff.txt"
"$JSI" diff "$TMP/old.types" "$TMP/old.types" | grep -q "identical"

# repo: first add is v1, a drifting second batch bumps to v2.
"$JSI" gen twitter 30 > "$TMP/tw1.jsonl"
"$JSI" gen twitter 30 --seed 77 > "$TMP/tw2.jsonl"
"$JSI" repo add "$TMP/repo.txt" firehose "$TMP/tw1.jsonl" | grep -q "v1"
"$JSI" repo add "$TMP/repo.txt" firehose "$TMP/tw2.jsonl" > "$TMP/repo_add2.txt"
"$JSI" repo show "$TMP/repo.txt" | grep -q "firehose"
"$JSI" repo show "$TMP/repo.txt" firehose | grep -q "v1"

"$JSI" codegen "$TMP/gh.jsonl" --root PullRequest --namespace gh | grep -q "struct PullRequest"

# checkpoint/resume: a checkpointed run matches the plain run, and resuming
# a partial run from its checkpoint converges to the same schema.
"$JSI" infer "$TMP/gh.jsonl" > "$TMP/schema_plain.txt"
"$JSI" infer "$TMP/gh.jsonl" --checkpoint "$TMP/cp.txt" --checkpoint-every 7 \
  > "$TMP/schema_cp.txt"
cmp "$TMP/schema_plain.txt" "$TMP/schema_cp.txt"
test -f "$TMP/cp.txt"
head -20 "$TMP/gh.jsonl" > "$TMP/gh_head.jsonl"
"$JSI" infer "$TMP/gh_head.jsonl" --checkpoint "$TMP/cp2.txt" > /dev/null
"$JSI" infer "$TMP/gh.jsonl" --checkpoint "$TMP/cp2.txt" --resume --stats \
  > "$TMP/schema_resumed.txt" 2> "$TMP/resume_stats.txt"
cmp "$TMP/schema_plain.txt" "$TMP/schema_resumed.txt"
grep -q "resumed from" "$TMP/resume_stats.txt"
# a truncated checkpoint is refused, not silently mis-resumed.
head -c 40 "$TMP/cp2.txt" > "$TMP/cp_torn.txt"
if "$JSI" infer "$TMP/gh.jsonl" --checkpoint "$TMP/cp_torn.txt" --resume \
    > /dev/null 2>&1; then
  echo "expected resume from torn checkpoint to fail"; exit 1
fi
# budget flags: oversize lines are rejected under the strict policy and
# skipped under --skip-malformed, identically on the DOM path.
if "$JSI" infer "$TMP/gh.jsonl" --max-line-bytes 64 > /dev/null 2>&1; then
  echo "expected --max-line-bytes 64 to fail on github records"; exit 1
fi
"$JSI" infer "$TMP/gh.jsonl" --max-line-bytes 64 --skip-malformed \
  > "$TMP/budget_direct.txt" 2> /dev/null
"$JSI" infer "$TMP/gh.jsonl" --max-line-bytes 64 --skip-malformed --no-direct \
  > "$TMP/budget_dom.txt" 2> /dev/null
cmp "$TMP/budget_direct.txt" "$TMP/budget_dom.txt"
if "$JSI" infer "$TMP/gh.jsonl" --max-depth 2 > /dev/null 2>&1; then
  echo "expected --max-depth 2 to fail on nested records"; exit 1
fi

# annotation: --annotate reports refinements, exports enriched JSON Schema,
# and produces identical output serial vs parallel.
printf '%s\n' '{"type":"a","x":1}' '{"type":"a","x":2}' '{"type":"b","y":"s"}' \
  > "$TMP/tagged.jsonl"
"$JSI" infer "$TMP/tagged.jsonl" --annotate --stats \
  > "$TMP/ann.txt" 2> "$TMP/ann_stats.txt"
grep -q 'discriminated by "type" into 2 variants' "$TMP/ann.txt"
grep -q "annotation:" "$TMP/ann_stats.txt"
"$JSI" infer "$TMP/gh.jsonl" --annotate --threads 1 > "$TMP/ann_serial.txt"
"$JSI" infer "$TMP/gh.jsonl" --annotate --threads 8 > "$TMP/ann_par.txt"
cmp "$TMP/ann_serial.txt" "$TMP/ann_par.txt"
"$JSI" export "$TMP/tagged.jsonl" --annotate > "$TMP/ann_export.txt"
grep -q '"oneOf"' "$TMP/ann_export.txt"
grep -q '"const"' "$TMP/ann_export.txt"
# annotation is incompatible with checkpointing: refused, not ignored.
if "$JSI" infer "$TMP/gh.jsonl" --annotate --checkpoint "$TMP/cp3.txt" \
    > /dev/null 2>&1; then
  echo "expected --annotate with --checkpoint to be refused"; exit 1
fi
# io modes: every input source produces the identical schema, and stdin
# streams through the bounded pipeline ('-' equals the file run).
"$JSI" infer "$TMP/gh.jsonl" --io mmap > "$TMP/io_mmap.txt"
"$JSI" infer "$TMP/gh.jsonl" --io read --read-ahead-mb 1 > "$TMP/io_read.txt"
"$JSI" infer "$TMP/gh.jsonl" --io stream --threads 4 > "$TMP/io_stream.txt"
"$JSI" infer - < "$TMP/gh.jsonl" > "$TMP/io_stdin.txt"
"$JSI" infer - --stats < "$TMP/gh.jsonl" > "$TMP/io_stdin_stats.txt" 2> /dev/null
cmp "$TMP/schema_plain.txt" "$TMP/io_mmap.txt"
cmp "$TMP/schema_plain.txt" "$TMP/io_read.txt"
cmp "$TMP/schema_plain.txt" "$TMP/io_stream.txt"
cmp "$TMP/schema_plain.txt" "$TMP/io_stdin.txt"
cmp "$TMP/schema_plain.txt" "$TMP/io_stdin_stats.txt"
# degraded-mode parity across sources: same skips, same report.
"$JSI" infer "$TMP/gh.jsonl" --max-line-bytes 64 --skip-malformed --io stream \
  > "$TMP/budget_stream.txt" 2> "$TMP/budget_stream_err.txt"
cmp "$TMP/budget_direct.txt" "$TMP/budget_stream.txt"
grep -q "skipped" "$TMP/budget_stream_err.txt"
# checkpointed runs ride the pipeline too, in every mode.
"$JSI" infer "$TMP/gh.jsonl" --io read --checkpoint "$TMP/cp_io.txt" \
  --checkpoint-every 7 > "$TMP/io_cp.txt"
cmp "$TMP/schema_plain.txt" "$TMP/io_cp.txt"
# seekable-only modes are refused on stdin; unknown modes are usage errors.
if "$JSI" infer - --io mmap < "$TMP/gh.jsonl" > /dev/null 2>&1; then
  echo "expected --io mmap on stdin to be refused"; exit 1
fi
if "$JSI" infer "$TMP/gh.jsonl" --io pwrite > /dev/null 2>&1; then
  echo "expected unknown --io mode to be a usage error"; exit 1
fi

# diff --data: variant drift between two annotated datasets exits 2.
printf '%s\n' '{"type":"a","x":1}' '{"type":"b","y":"s"}' '{"type":"c","z":true}' \
  > "$TMP/tagged2.jsonl"
if "$JSI" diff --data "$TMP/tagged.jsonl" "$TMP/tagged2.jsonl" \
    > "$TMP/ddiff.txt"; then
  echo "expected diff --data to exit 2"; exit 1
fi
grep -q "variant-added" "$TMP/ddiff.txt"
"$JSI" diff --data "$TMP/tagged.jsonl" "$TMP/tagged.jsonl" | grep -q "identical"

echo "jsi CLI smoke test passed"
