// Unit tests for the RFC 8259 parser: literals, numbers, strings/escapes,
// records, arrays, error positions, depth limits, duplicate-key rejection.

#include <gtest/gtest.h>

#include <string>

#include "json/parser.h"
#include "json/serializer.h"

namespace jsonsi::json {
namespace {

ValueRef MustParse(std::string_view text) {
  Result<ValueRef> r = Parse(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r.value() : Value::Null();
}

Status ParseError(std::string_view text) {
  Result<ValueRef> r = Parse(text);
  EXPECT_FALSE(r.ok()) << "unexpectedly parsed: " << text;
  return r.ok() ? Status::OK() : r.status();
}

// ---------------------------------------------------------------- basics --

TEST(ParserTest, Literals) {
  EXPECT_TRUE(MustParse("null")->is_null());
  EXPECT_TRUE(MustParse("true")->bool_value());
  EXPECT_FALSE(MustParse("false")->bool_value());
}

TEST(ParserTest, SurroundingWhitespace) {
  EXPECT_TRUE(MustParse("  \n\t null \r\n")->is_null());
}

TEST(ParserTest, MalformedLiterals) {
  ParseError("nul");
  ParseError("tru");
  ParseError("falsee");
  ParseError("TRUE");
}

// --------------------------------------------------------------- numbers --

TEST(ParserTest, Integers) {
  EXPECT_DOUBLE_EQ(MustParse("0")->num_value(), 0);
  EXPECT_DOUBLE_EQ(MustParse("42")->num_value(), 42);
  EXPECT_DOUBLE_EQ(MustParse("-7")->num_value(), -7);
}

TEST(ParserTest, Fractions) {
  EXPECT_DOUBLE_EQ(MustParse("3.5")->num_value(), 3.5);
  EXPECT_DOUBLE_EQ(MustParse("-0.125")->num_value(), -0.125);
}

TEST(ParserTest, Exponents) {
  EXPECT_DOUBLE_EQ(MustParse("1e3")->num_value(), 1000);
  EXPECT_DOUBLE_EQ(MustParse("2.5E-2")->num_value(), 0.025);
  EXPECT_DOUBLE_EQ(MustParse("1e+2")->num_value(), 100);
}

TEST(ParserTest, NumberSyntaxErrors) {
  ParseError("01");       // leading zero
  ParseError("-");         // lone sign
  ParseError("1.");        // digit required after '.'
  ParseError(".5");        // JSON requires an integer part
  ParseError("1e");        // digit required in exponent
  ParseError("+1");        // leading '+' not allowed
  ParseError("1e309");     // overflow -> non-finite, rejected
}

// --------------------------------------------------------------- strings --

TEST(ParserTest, SimpleString) {
  EXPECT_EQ(MustParse("\"hello\"")->str_value(), "hello");
  EXPECT_EQ(MustParse("\"\"")->str_value(), "");
}

TEST(ParserTest, SimpleEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b\\c\/d\be\ff\ng\rh\ti")")->str_value(),
            "a\"b\\c/d\be\ff\ng\rh\ti");
}

TEST(ParserTest, UnicodeEscapeBmp) {
  EXPECT_EQ(MustParse(R"("A")")->str_value(), "A");
  EXPECT_EQ(MustParse(R"("é")")->str_value(), "\xc3\xa9");      // é
  EXPECT_EQ(MustParse(R"("€")")->str_value(), "\xe2\x82\xac");  // €
}

TEST(ParserTest, UnicodeSurrogatePair) {
  // U+1F600 GRINNING FACE = 😀 -> F0 9F 98 80
  EXPECT_EQ(MustParse(R"("😀")")->str_value(),
            "\xf0\x9f\x98\x80");
}

TEST(ParserTest, StringErrors) {
  ParseError("\"unterminated");
  ParseError(R"("bad \q escape")");
  ParseError(R"("\u12")");          // short hex
  ParseError(R"("\uD83D")");        // unpaired high surrogate
  ParseError(R"("\uDE00")");        // unpaired low surrogate
  ParseError(R"("\uD83DA")");  // invalid low surrogate
  ParseError("\"raw\nnewline\"");   // unescaped control char
}

// --------------------------------------------------------------- records --

TEST(ParserTest, EmptyRecord) {
  ValueRef v = MustParse("{}");
  EXPECT_TRUE(v->is_record());
  EXPECT_TRUE(v->fields().empty());
}

TEST(ParserTest, NestedRecord) {
  ValueRef v = MustParse(R"({"a": 1, "b": {"c": [true, null]}})");
  ASSERT_TRUE(v->is_record());
  ASSERT_NE(v->Find("b"), nullptr);
  EXPECT_NE(v->Find("b")->Find("c"), nullptr);
}

TEST(ParserTest, DuplicateKeysRejected) {
  // Section 4: only well-formed records (mutually distinct keys) are values.
  Status st = ParseError(R"({"k": 1, "k": 2})");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("duplicate"), std::string::npos);
}

TEST(ParserTest, RecordSyntaxErrors) {
  ParseError("{");
  ParseError(R"({"a" 1})");
  ParseError(R"({"a": 1,})");
  ParseError(R"({a: 1})");
  ParseError(R"({"a": 1 "b": 2})");
}

// ---------------------------------------------------------------- arrays --

TEST(ParserTest, Arrays) {
  EXPECT_TRUE(MustParse("[]")->elements().empty());
  ValueRef v = MustParse("[1, \"two\", [3], {\"four\": 4}, null]");
  ASSERT_EQ(v->elements().size(), 5u);
  EXPECT_TRUE(v->elements()[3]->is_record());
}

TEST(ParserTest, ArraySyntaxErrors) {
  ParseError("[");
  ParseError("[1,]");
  ParseError("[1 2]");
}

// ------------------------------------------------------- errors & limits --

TEST(ParserTest, TrailingContentRejected) { ParseError("1 2"); }

TEST(ParserTest, ErrorsCarryLineAndColumn) {
  Status st = ParseError("{\"a\": 1,\n  bad}");
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st;
}

TEST(ParserTest, DepthLimitEnforced) {
  ParseOptions opts;
  opts.max_depth = 4;
  std::string deep = "[[[[[1]]]]]";  // depth 5
  EXPECT_FALSE(Parse(deep, opts).ok());
  std::string ok = "[[[[1]]]]";  // depth 4
  EXPECT_TRUE(Parse(ok, opts).ok());
}

TEST(ParserTest, DeeplyNestedWithinDefaultLimit) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_TRUE(Parse(deep).ok());
}

TEST(ParserTest, ParsePrefixReportsConsumed) {
  size_t consumed = 0;
  Result<ValueRef> r = ParsePrefix("  {\"a\":1}  {\"b\":2}", &consumed);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(consumed, 9u);  // two spaces + 7 chars of the first record
  Result<ValueRef> r2 =
      ParsePrefix(std::string_view("  {\"a\":1}  {\"b\":2}").substr(consumed),
                  &consumed);
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r2.value()->Find("b"), nullptr);
}

// ----------------------------------------------------------- round trips --

TEST(ParserTest, RoundTripsThroughSerializer) {
  const char* docs[] = {
      "null",
      "true",
      "[1,2.5,-3]",
      R"({"a":1,"b":[true,null,"s"],"c":{"d":{}}})",
      R"(["mixed",1,{"r":[]},[[]]])",
  };
  for (const char* doc : docs) {
    ValueRef v1 = MustParse(doc);
    std::string text = ToJson(*v1);
    ValueRef v2 = MustParse(text);
    EXPECT_TRUE(v1->Equals(*v2)) << doc << " vs " << text;
  }
}

}  // namespace
}  // namespace jsonsi::json
