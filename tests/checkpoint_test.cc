// Tests for crash-safe checkpoint/resume (core/checkpoint.h).
//
// The two headline invariants of the durability layer, property-tested:
//   * a run killed and resumed at ANY record boundary produces a schema
//     TypeEquals-identical (and statistics-identical) to the uninterrupted
//     run — exhaustively at small scale, sampled over a 10k-record corpus;
//   * a checkpoint truncated at EVERY byte prefix, or corrupted at every
//     byte, is detected as corrupt — there is no input that silently
//     restores to a wrong state.
// Plus the durability protocol (temp-file + atomic rename, TornWriteInjector
// faults leave the previous checkpoint intact), abort/resume offsets, and
// SchemaRepository interop (a resumed run registers with the same
// version/diff history as an uninterrupted one).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.h"
#include "core/streaming_inferencer.h"
#include "datagen/generator.h"
#include "json/serializer.h"
#include "repository/schema_repository.h"

namespace jsonsi::core {
namespace {

std::string DatagenJsonl(datagen::DatasetId id, size_t n, uint64_t seed) {
  auto gen = datagen::MakeGenerator(id, seed);
  std::string text;
  for (size_t i = 0; i < n; ++i) {
    json::AppendJson(*gen->Generate(i), &text);
    text.push_back('\n');
  }
  return text;
}

// Byte offsets of every line start in `text` (first entry 0), plus end.
std::vector<size_t> LineBoundaries(std::string_view text) {
  std::vector<size_t> offsets{0};
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') offsets.push_back(i + 1);
  }
  if (offsets.back() != text.size()) offsets.push_back(text.size());
  return offsets;
}

void ExpectSameState(const StreamingInferencer& a,
                     const StreamingInferencer& b) {
  Schema sa = a.Snapshot();
  Schema sb = b.Snapshot();
  EXPECT_TRUE(sa.type->Equals(*sb.type))
      << "schemas diverge after resume";
  EXPECT_EQ(sa.stats.record_count, sb.stats.record_count);
  EXPECT_EQ(sa.stats.distinct_type_count, sb.stats.distinct_type_count);
  EXPECT_EQ(sa.stats.min_type_size, sb.stats.min_type_size);
  EXPECT_EQ(sa.stats.max_type_size, sb.stats.max_type_size);
  EXPECT_NEAR(sa.stats.avg_type_size, sb.stats.avg_type_size, 1e-9);
  EXPECT_EQ(a.ingest_stats().bytes_consumed, b.ingest_stats().bytes_consumed);
  EXPECT_EQ(a.ingest_stats().lines_read, b.ingest_stats().lines_read);
  EXPECT_EQ(a.ingest_stats().malformed_lines,
            b.ingest_stats().malformed_lines);
}

TEST(CheckpointTest, EmptyStreamRoundTrips) {
  StreamingInferencer original;
  auto text = SerializeCheckpoint(original);
  ASSERT_TRUE(text.ok()) << text.status();
  StreamingInferencer restored;
  ASSERT_TRUE(RestoreCheckpoint(text.value(), &restored).ok());
  ExpectSameState(original, restored);
  EXPECT_TRUE(restored.Snapshot().type->is_empty());
}

TEST(CheckpointTest, RoundTripPreservesStateAndOptions) {
  StreamingOptions opts;
  opts.on_malformed = json::MalformedLinePolicy::kSkip;
  opts.parse.max_depth = 64;
  opts.parse.max_document_bytes = 1 << 20;
  opts.max_error_rate = 0.25;
  StreamingInferencer original(opts);
  ASSERT_TRUE(original
                  .AddJsonLines("{\"a\":1}\nbad line\n{\"a\":\"s\"}\n\n"
                                "{\"b\":[1,2]}\n")
                  .ok());

  auto text = SerializeCheckpoint(original);
  ASSERT_TRUE(text.ok()) << text.status();
  StreamingInferencer restored;
  ASSERT_TRUE(RestoreCheckpoint(text.value(), &restored).ok());

  ExpectSameState(original, restored);
  EXPECT_EQ(restored.options().on_malformed,
            json::MalformedLinePolicy::kSkip);
  EXPECT_EQ(restored.options().parse.max_depth, 64u);
  EXPECT_EQ(restored.options().parse.max_document_bytes, 1u << 20);
  EXPECT_DOUBLE_EQ(restored.options().max_error_rate, 0.25);
  EXPECT_EQ(restored.ingest_stats().errors.size(),
            original.ingest_stats().errors.size());
  ASSERT_FALSE(restored.ingest_stats().errors.empty());
  EXPECT_EQ(restored.ingest_stats().errors[0].message,
            original.ingest_stats().errors[0].message);

  // Both must keep evolving identically: the checkpoint carries the policy
  // baseline, not just the schema.
  ASSERT_TRUE(original.AddJsonLines("{\"c\":null}\nworse\n").ok());
  ASSERT_TRUE(restored.AddJsonLines("{\"c\":null}\nworse\n").ok());
  ExpectSameState(original, restored);
}

// The headline invariant, exhaustively: kill at every record boundary of a
// mixed corpus and resume; the result must equal the uninterrupted run.
TEST(CheckpointTest, ResumeAtEveryRecordBoundaryMatchesUninterrupted) {
  const std::string text =
      DatagenJsonl(datagen::DatasetId::kGitHub, 120, 3) +
      DatagenJsonl(datagen::DatasetId::kTwitter, 80, 4);
  const std::vector<size_t> boundaries = LineBoundaries(text);

  StreamingInferencer uninterrupted;
  ASSERT_TRUE(uninterrupted.AddJsonLines(text).ok());

  for (size_t off : boundaries) {
    StreamingInferencer first;
    ASSERT_TRUE(first.AddJsonLines(std::string_view(text).substr(0, off)).ok());
    ASSERT_EQ(first.ingest_stats().bytes_consumed, off);

    auto cp = SerializeCheckpoint(first);
    ASSERT_TRUE(cp.ok()) << cp.status();
    StreamingInferencer resumed;
    ASSERT_TRUE(RestoreCheckpoint(cp.value(), &resumed).ok());
    size_t resume_at = resumed.ingest_stats().bytes_consumed;
    ASSERT_EQ(resume_at, off);
    ASSERT_TRUE(
        resumed.AddJsonLines(std::string_view(text).substr(resume_at)).ok());
    ExpectSameState(uninterrupted, resumed);
  }
}

// Same invariant at scale (10k records), sampled boundaries, resuming onto
// the chunk-parallel path — resume must not care how the remainder is fed.
TEST(CheckpointTest, TenThousandRecordsSampledBoundariesParallelResume) {
  const std::string text =
      DatagenJsonl(datagen::DatasetId::kGitHub, 10000, 11);
  const std::vector<size_t> boundaries = LineBoundaries(text);

  StreamingInferencer uninterrupted;
  ASSERT_TRUE(uninterrupted.AddJsonLines(text).ok());
  Schema full = uninterrupted.Snapshot();

  for (size_t b = 977; b < boundaries.size(); b += 977) {
    size_t off = boundaries[b];
    StreamingInferencer first;
    ASSERT_TRUE(
        first.AddJsonLines(std::string_view(text).substr(0, off)).ok());
    auto cp = SerializeCheckpoint(first);
    ASSERT_TRUE(cp.ok()) << cp.status();
    StreamingInferencer resumed;
    ASSERT_TRUE(RestoreCheckpoint(cp.value(), &resumed).ok());
    ASSERT_TRUE(resumed
                    .AddJsonLinesParallel(std::string_view(text).substr(off),
                                          4)
                    .ok());
    Schema schema = resumed.Snapshot();
    EXPECT_TRUE(schema.type->Equals(*full.type)) << "boundary " << b;
    EXPECT_EQ(schema.stats.record_count, full.stats.record_count);
    EXPECT_EQ(schema.stats.distinct_type_count,
              full.stats.distinct_type_count);
  }
}

// Degraded-mode resume: an aborted read checkpoints with bytes_consumed at
// the aborting line; fixing the input in place and resuming equals a clean
// run over the fixed input.
TEST(CheckpointTest, AbortCheckpointResumesAtTheFailingLine) {
  std::string good = DatagenJsonl(datagen::DatasetId::kGitHub, 40, 9);
  std::vector<size_t> lines = LineBoundaries(good);
  std::string broken = good;
  size_t bad_at = lines[17];
  broken[bad_at] = '#';  // line 18 now fails to parse

  StreamingInferencer stream;
  Status st = stream.AddJsonLines(broken);
  ASSERT_FALSE(st.ok());
  ASSERT_EQ(stream.ingest_stats().bytes_consumed, bad_at);

  auto cp = SerializeCheckpoint(stream);
  ASSERT_TRUE(cp.ok()) << cp.status();
  StreamingInferencer resumed;
  ASSERT_TRUE(RestoreCheckpoint(cp.value(), &resumed).ok());
  size_t off = resumed.ingest_stats().bytes_consumed;
  ASSERT_EQ(off, bad_at);
  // Restore rewinds to the consumed prefix: the aborting line was scanned
  // but not consumed, and the resumed read re-scans it, so its counts and
  // recorded error must not be carried twice.
  EXPECT_EQ(resumed.ingest_stats().bytes_read, bad_at);
  EXPECT_EQ(resumed.ingest_stats().lines_read, 17u);
  EXPECT_EQ(resumed.ingest_stats().malformed_lines, 0u);
  EXPECT_TRUE(resumed.ingest_stats().errors.empty());
  ASSERT_TRUE(
      resumed.AddJsonLines(std::string_view(good).substr(off)).ok());

  StreamingInferencer clean;
  ASSERT_TRUE(clean.AddJsonLines(good).ok());
  EXPECT_TRUE(resumed.Snapshot().type->Equals(*clean.Snapshot().type));
  EXPECT_EQ(resumed.record_count(), clean.record_count());
  ExpectSameState(clean, resumed);
  EXPECT_EQ(resumed.ingest_stats().bytes_read, good.size());
}

// The reviewer scenario for abort accounting: checkpoint after an abort,
// resume, checkpoint again mid-stream, crash, resume again. The second
// checkpoint must record the true position — not one inflated by the old
// failing line's length — and recorded errors must keep absolute offsets.
TEST(CheckpointTest, SecondCrashAndResumeAfterAbortStaysExact) {
  std::string good = DatagenJsonl(datagen::DatasetId::kGitHub, 40, 9);
  std::vector<size_t> lines = LineBoundaries(good);
  std::string broken = good;
  size_t bad_at = lines[17];
  broken[bad_at] = '#';

  StreamingInferencer stream;
  ASSERT_FALSE(stream.AddJsonLines(broken).ok());
  auto cp1 = SerializeCheckpoint(stream);
  ASSERT_TRUE(cp1.ok()) << cp1.status();

  // Resume over the unchanged input: the same line aborts again, and its
  // recorded error must carry the absolute stream offset and line number.
  {
    StreamingInferencer again;
    ASSERT_TRUE(RestoreCheckpoint(cp1.value(), &again).ok());
    ASSERT_FALSE(
        again.AddJsonLines(std::string_view(broken).substr(bad_at)).ok());
    ASSERT_EQ(again.ingest_stats().errors.size(), 1u);
    EXPECT_EQ(again.ingest_stats().errors[0].byte_offset, bad_at);
    EXPECT_EQ(again.ingest_stats().errors[0].line_number, 18u);
    EXPECT_EQ(again.ingest_stats().bytes_consumed, bad_at);
  }

  // Resume over the fixed input, but only partway — then checkpoint and
  // "crash". The second resume must pick up at the exact byte.
  StreamingInferencer first;
  ASSERT_TRUE(RestoreCheckpoint(cp1.value(), &first).ok());
  size_t partial = lines[30];
  ASSERT_TRUE(first
                  .AddJsonLines(
                      std::string_view(good).substr(bad_at, partial - bad_at))
                  .ok());
  ASSERT_EQ(first.ingest_stats().bytes_consumed, partial);
  ASSERT_EQ(first.ingest_stats().bytes_read, partial);
  auto cp2 = SerializeCheckpoint(first);
  ASSERT_TRUE(cp2.ok()) << cp2.status();

  StreamingInferencer second;
  ASSERT_TRUE(RestoreCheckpoint(cp2.value(), &second).ok());
  ASSERT_EQ(second.ingest_stats().bytes_consumed, partial);
  ASSERT_TRUE(
      second.AddJsonLines(std::string_view(good).substr(partial)).ok());

  StreamingInferencer clean;
  ASSERT_TRUE(clean.AddJsonLines(good).ok());
  ExpectSameState(clean, second);
  EXPECT_EQ(second.ingest_stats().bytes_read, good.size());
  EXPECT_EQ(second.ingest_stats().lines_read, 40u);
  EXPECT_TRUE(second.ingest_stats().errors.empty());
}

// A resume at a mid-file offset must not treat the first re-read line as the
// stream's first line: an interior UTF-8 BOM stays malformed, exactly as in
// an uninterrupted run.
TEST(CheckpointTest, ResumeDoesNotStripMidStreamBom) {
  const std::string text =
      "{\"a\":1}\n\xEF\xBB\xBF{\"a\":2}\n{\"a\":3}\n";
  StreamingOptions opts;
  opts.on_malformed = json::MalformedLinePolicy::kSkip;

  StreamingInferencer uninterrupted(opts);
  ASSERT_TRUE(uninterrupted.AddJsonLines(text).ok());
  ASSERT_EQ(uninterrupted.malformed_count(), 1u);

  StreamingInferencer first(opts);
  size_t off = text.find('\n') + 1;  // kill right before the BOM line
  ASSERT_TRUE(first.AddJsonLines(std::string_view(text).substr(0, off)).ok());
  auto cp = SerializeCheckpoint(first);
  ASSERT_TRUE(cp.ok()) << cp.status();
  StreamingInferencer resumed(opts);
  ASSERT_TRUE(RestoreCheckpoint(cp.value(), &resumed).ok());
  ASSERT_TRUE(resumed.AddJsonLines(std::string_view(text).substr(off)).ok());
  ExpectSameState(uninterrupted, resumed);
  EXPECT_EQ(resumed.malformed_count(), 1u);
}

TEST(CheckpointTest, EveryBytePrefixTruncationIsDetected) {
  StreamingInferencer stream;
  ASSERT_TRUE(
      stream
          .AddJsonLines(DatagenJsonl(datagen::DatasetId::kNYTimes, 25, 5))
          .ok());
  auto cp = SerializeCheckpoint(stream);
  ASSERT_TRUE(cp.ok()) << cp.status();
  const std::string& full = cp.value();

  for (size_t n = 0; n < full.size(); ++n) {
    StreamingInferencer sink;
    Status st = RestoreCheckpoint(std::string_view(full).substr(0, n), &sink);
    EXPECT_FALSE(st.ok()) << "prefix of " << n << " bytes restored";
  }
  StreamingInferencer whole;
  EXPECT_TRUE(RestoreCheckpoint(full, &whole).ok());
  ExpectSameState(stream, whole);
}

TEST(CheckpointTest, EveryByteCorruptionIsDetected) {
  StreamingInferencer stream;
  ASSERT_TRUE(stream.AddJsonLines("{\"a\":1}\n{\"b\":\"x\"}\n").ok());
  auto cp = SerializeCheckpoint(stream);
  ASSERT_TRUE(cp.ok()) << cp.status();
  std::string bytes = cp.value();
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] ^= 0x01;
    StreamingInferencer sink;
    EXPECT_FALSE(RestoreCheckpoint(bytes, &sink).ok())
        << "flip at byte " << i << " restored";
    bytes[i] ^= 0x01;
  }
}

class CheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "jsonsi_checkpoint_test.ckpt";
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(CheckpointFileTest, SaveLoadRoundTrip) {
  StreamingInferencer stream;
  ASSERT_TRUE(
      stream.AddJsonLines(DatagenJsonl(datagen::DatasetId::kGitHub, 30, 2))
          .ok());
  ASSERT_TRUE(SaveCheckpoint(stream, path_).ok());
  StreamingInferencer loaded;
  ASSERT_TRUE(LoadCheckpoint(path_, &loaded).ok());
  ExpectSameState(stream, loaded);
}

TEST_F(CheckpointFileTest, TruncatedPublishIsDetectedAtLoad) {
  StreamingInferencer stream;
  ASSERT_TRUE(stream.AddJsonLines("{\"a\":1}\n").ok());
  for (size_t cut : {0u, 1u, 40u, 200u}) {
    TornWriteInjector fault;
    fault.truncate_at = cut;
    ASSERT_TRUE(SaveCheckpoint(stream, path_, &fault).ok());
    StreamingInferencer sink;
    EXPECT_FALSE(LoadCheckpoint(path_, &sink).ok())
        << "truncation at " << cut << " loaded";
  }
}

TEST_F(CheckpointFileTest, CorruptedPublishIsDetectedAtLoad) {
  StreamingInferencer stream;
  ASSERT_TRUE(stream.AddJsonLines("{\"a\":1}\n{\"b\":2}\n").ok());
  TornWriteInjector fault;
  fault.corrupt_at = 60;
  ASSERT_TRUE(SaveCheckpoint(stream, path_, &fault).ok());
  StreamingInferencer sink;
  EXPECT_FALSE(LoadCheckpoint(path_, &sink).ok());
}

TEST_F(CheckpointFileTest, CrashBeforeRenameLeavesPreviousCheckpointIntact) {
  StreamingInferencer stream;
  ASSERT_TRUE(stream.AddJsonLines("{\"a\":1}\n").ok());
  ASSERT_TRUE(SaveCheckpoint(stream, path_).ok());

  ASSERT_TRUE(stream.AddJsonLines("{\"b\":2}\n{\"c\":3}\n").ok());
  TornWriteInjector crash;
  crash.fail_before_rename = true;
  EXPECT_FALSE(SaveCheckpoint(stream, path_, &crash).ok());

  // The published file still holds the previous consistent state.
  StreamingInferencer loaded;
  ASSERT_TRUE(LoadCheckpoint(path_, &loaded).ok());
  EXPECT_EQ(loaded.record_count(), 1u);
}

TEST(CheckpointTest, ProfilingStreamsRefuseToCheckpoint) {
  StreamingOptions opts;
  opts.profile = true;
  StreamingInferencer stream(opts);
  ASSERT_TRUE(stream.AddJson("{\"a\":1}").ok());
  EXPECT_FALSE(SerializeCheckpoint(stream).ok());
}

// Satellite: a resumed run is indistinguishable downstream — registering
// its schema in a SchemaRepository yields the same version and diff history
// as the uninterrupted run, byte for byte in the persisted form.
TEST(CheckpointTest, RepositoryInteropMatchesUninterruptedRun) {
  const std::string batch1 = DatagenJsonl(datagen::DatasetId::kGitHub, 60, 7);
  const std::string batch2 =
      DatagenJsonl(datagen::DatasetId::kTwitter, 60, 8);

  // Uninterrupted: two batches into a repository.
  repository::SchemaRepository repo_full;
  {
    StreamingInferencer s;
    ASSERT_TRUE(s.AddJsonLines(batch1).ok());
    ASSERT_TRUE(
        repo_full.RegisterBatch("events", s.Snapshot().type, 60).ok());
    ASSERT_TRUE(s.AddJsonLines(batch2).ok());
    ASSERT_TRUE(
        repo_full.RegisterBatch("events", s.Snapshot().type, 60).ok());
  }

  // Interrupted: killed mid-batch2 and resumed from the checkpoint.
  repository::SchemaRepository repo_resumed;
  {
    StreamingInferencer s;
    ASSERT_TRUE(s.AddJsonLines(batch1).ok());
    ASSERT_TRUE(
        repo_resumed.RegisterBatch("events", s.Snapshot().type, 60).ok());
    size_t half = LineBoundaries(batch2)[30];
    ASSERT_TRUE(
        s.AddJsonLines(std::string_view(batch2).substr(0, half)).ok());
    auto cp = SerializeCheckpoint(s);
    ASSERT_TRUE(cp.ok()) << cp.status();
    StreamingInferencer resumed;
    ASSERT_TRUE(RestoreCheckpoint(cp.value(), &resumed).ok());
    size_t off = resumed.ingest_stats().bytes_consumed -
                 batch1.size();  // offset within batch2
    ASSERT_TRUE(
        resumed.AddJsonLines(std::string_view(batch2).substr(off)).ok());
    ASSERT_TRUE(
        repo_resumed.RegisterBatch("events", resumed.Snapshot().type, 60)
            .ok());
  }

  EXPECT_EQ(repo_full.Serialize(), repo_resumed.Serialize());
  EXPECT_EQ(repo_full.Current("events")->version,
            repo_resumed.Current("events")->version);
  EXPECT_EQ(repo_full.LatestDrift("events").size(),
            repo_resumed.LatestDrift("events").size());
}

}  // namespace
}  // namespace jsonsi::core
