// Integration tests for the `jsi serve` daemon (src/server/).
//
// Every test starts a real InferenceServer on an ephemeral port and drives
// it through the real HTTP client, so the suite exercises exactly the wire
// protocol a tenant sees. The load-bearing assertions are schema parity:
// each session's final schema — however its input was batched, interleaved
// with other tenants, or split across a server restart — must be
// TypeEquals-identical (and print-identical) to a one-shot
// SchemaInferencer run over the same concatenated input, by associativity
// of fusion.

#include <csignal>
#include <cstdio>
#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "core/schema_inferencer.h"
#include "core/streaming_inferencer.h"
#include "gtest/gtest.h"
#include "json/jsonl.h"
#include "server/http.h"
#include "server/server.h"
#include "server/session.h"
#include "server/shutdown.h"
#include "types/type.h"
#include "types/type_parser.h"

namespace jsonsi::server {
namespace {

// ---------------------------------------------------------------------------
// Helpers

/// Deterministic JSONL dataset whose schema depends on `variant`, so the
/// concurrent-session test can verify tenants never bleed into each other.
std::string MakeDataset(int variant, int lines, int offset = 0) {
  std::string out;
  for (int i = offset; i < offset + lines; ++i) {
    out += "{\"id\": " + std::to_string(i);
    out += ", \"tenant_" + std::to_string(variant) + "\": \"u" +
           std::to_string(i % 7) + "\"";
    if (i % 3 == 0) {
      out += ", \"flag\": " + std::string(i % 2 ? "true" : "false");
    }
    if (i % 4 == variant % 4)
      out += ", \"tags\": [\"a\", " + std::to_string(i) + "]";
    if (i % 5 == 0) {
      out += ", \"nested\": {\"depth\": " + std::to_string(variant) + "}";
    }
    out += "}\n";
  }
  return out;
}

/// Crude but sufficient extractors for the server's flat JSON responses
/// (the tests own both sides of the wire, and values never contain escaped
/// quotes).
std::string JsonStrField(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  size_t pos = body.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  size_t end = body.find('"', pos);
  return end == std::string::npos ? "" : body.substr(pos, end - pos);
}

long JsonNumField(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  size_t pos = body.find(needle);
  if (pos == std::string::npos) return -1;
  return std::stol(body.substr(pos + needle.size()));
}

bool JsonBoolField(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  size_t pos = body.find(needle);
  return pos != std::string::npos &&
         body.compare(pos + needle.size(), 4, "true") == 0;
}

/// A Prometheus text-format exposition is lines of `# ...` comments and
/// `metric_name value` samples. Returns false (with a diagnostic) on the
/// first line that is neither — the /metrics-parseable-mid-ingest check.
::testing::AssertionResult PrometheusParses(const std::string& text) {
  if (text.empty()) return ::testing::AssertionFailure() << "empty exposition";
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      return ::testing::AssertionFailure() << "unterminated last line";
    }
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    // metric_name[{labels}] value
    size_t name_end = 0;
    while (name_end < line.size()) {
      char c = line[name_end];
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != ':') {
        break;
      }
      ++name_end;
    }
    if (name_end == 0) {
      return ::testing::AssertionFailure() << "bad metric name: " << line;
    }
    size_t value_start = name_end;
    if (value_start < line.size() && line[value_start] == '{') {
      size_t close = line.find('}', value_start);
      if (close == std::string::npos) {
        return ::testing::AssertionFailure() << "unclosed labels: " << line;
      }
      value_start = close + 1;
    }
    if (value_start >= line.size() || line[value_start] != ' ') {
      return ::testing::AssertionFailure() << "no sample value: " << line;
    }
    if (line.find(' ', value_start + 1) != std::string::npos) {
      return ::testing::AssertionFailure() << "trailing garbage: " << line;
    }
  }
  return ::testing::AssertionSuccess();
}

/// One-shot reference: the CLI pipeline over the full concatenated input.
std::string OneShotSchemaText(const std::string& jsonl) {
  core::SchemaInferencer inferencer;
  auto schema = inferencer.InferFromJsonLines(jsonl);
  EXPECT_TRUE(schema.ok()) << schema.status().message();
  return schema.ok() ? schema.value().ToString() : std::string();
}

/// Creates a session over `conn` and returns its id (ADD_FAILURE on error).
std::string CreateSession(HttpConnection& conn, const std::string& config) {
  auto resp = conn.Call("POST", "/v1/sessions", config);
  if (!resp.ok() || resp.value().status != 201) {
    ADD_FAILURE() << "create failed: "
                  << (resp.ok() ? resp.value().body : resp.status().message());
    return "";
  }
  return JsonStrField(resp.value().body, "session");
}

/// Fetches /v1/sessions/{id}/schema?format=type and asserts it equals the
/// one-shot schema of `full_input`, both printed and structurally.
void ExpectSchemaMatchesOneShot(HttpConnection& conn, const std::string& id,
                                const std::string& full_input) {
  auto resp = conn.Call("GET", "/v1/sessions/" + id + "/schema?format=type");
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  ASSERT_EQ(resp.value().status, 200) << resp.value().body;
  EXPECT_EQ(resp.value().content_type, "text/plain; charset=utf-8");

  const std::string reference = OneShotSchemaText(full_input);
  EXPECT_EQ(resp.value().body, reference + "\n") << "session " << id;

  auto served = types::ParseType(resp.value().body);
  auto expected = types::ParseType(reference);
  ASSERT_TRUE(served.ok()) << served.status().message();
  ASSERT_TRUE(expected.ok()) << expected.status().message();
  EXPECT_TRUE(types::TypeEquals(served.value(), expected.value()));
}

// ---------------------------------------------------------------------------
// Basic endpoint behaviour

TEST(ServerTest, HealthMetricsAndErrorTaxonomy) {
  InferenceServer server;
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);  // ephemeral port resolved

  HttpConnection conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.port()).ok());

  auto health = conn.Call("GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, 200);

  auto metrics = conn.Call("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().status, 200);
  EXPECT_EQ(metrics.value().content_type,
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_TRUE(PrometheusParses(metrics.value().body));

  auto missing = conn.Call("GET", "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);
  EXPECT_NE(missing.value().body.find("\"error\""), std::string::npos);

  auto wrong_method = conn.Call("POST", "/healthz", "{}");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method.value().status, 405);

  auto bad_config = conn.Call("POST", "/v1/sessions", "{not json");
  ASSERT_TRUE(bad_config.ok());
  EXPECT_EQ(bad_config.value().status, 400);

  auto typo = conn.Call("POST", "/v1/sessions", "{\"polcy\": \"skip\"}");
  ASSERT_TRUE(typo.ok());
  EXPECT_EQ(typo.value().status, 400);  // unknown keys fail loudly

  auto no_session = conn.Call("POST", "/v1/sessions/s-99/ingest", "{}\n");
  ASSERT_TRUE(no_session.ok());
  EXPECT_EQ(no_session.value().status, 404);

  // Naming a repository source without a configured repository is a 400 at
  // create time, not a surprise at close time.
  auto orphan = conn.Call("POST", "/v1/sessions", "{\"source\": \"logs\"}");
  ASSERT_TRUE(orphan.ok());
  EXPECT_EQ(orphan.value().status, 400);

  EXPECT_TRUE(conn.connected());  // keep-alive survived the whole dialogue
  ASSERT_TRUE(server.Stop().ok());
}

TEST(ServerTest, OversizedBodyRejectedBeforeBuffering) {
  ServerOptions options;
  options.http.max_body_bytes = 256;
  InferenceServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto resp = HttpCall("127.0.0.1", server.port(), "POST", "/v1/sessions",
                       std::string(1024, ' '));
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  EXPECT_EQ(resp.value().status, 413);
  ASSERT_TRUE(server.Stop().ok());
}

// ---------------------------------------------------------------------------
// Schema parity

TEST(ServerTest, SingleSessionMatchesOneShot) {
  InferenceServer server;
  ASSERT_TRUE(server.Start().ok());
  HttpConnection conn;
  ASSERT_TRUE(conn.Connect("localhost", server.port()).ok());

  const std::string id = CreateSession(conn, "{}");
  ASSERT_FALSE(id.empty());

  std::string full;
  for (int batch = 0; batch < 4; ++batch) {
    const std::string text = MakeDataset(/*variant=*/1, 50, batch * 50);
    full += text;
    auto resp = conn.Call("POST", "/v1/sessions/" + id + "/ingest", text,
                          "application/x-ndjson");
    ASSERT_TRUE(resp.ok()) << resp.status().message();
    ASSERT_EQ(resp.value().status, 200) << resp.value().body;
    EXPECT_EQ(JsonNumField(resp.value().body, "records"), (batch + 1) * 50);
  }

  ExpectSchemaMatchesOneShot(conn, id, full);

  // The default export is JSON Schema; ?pretty=1 must stay valid.
  auto js = conn.Call("GET", "/v1/sessions/" + id + "/schema?pretty=1");
  ASSERT_TRUE(js.ok());
  ASSERT_EQ(js.value().status, 200);
  EXPECT_EQ(js.value().content_type, "application/schema+json");
  EXPECT_NE(js.value().body.find("\"type\""), std::string::npos);

  auto info = conn.Call("GET", "/v1/sessions/" + id);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info.value().status, 200);
  EXPECT_EQ(JsonNumField(info.value().body, "records"), 200);
  EXPECT_EQ(
      static_cast<size_t>(JsonNumField(info.value().body, "bytes_consumed")),
      full.size());
  EXPECT_FALSE(JsonBoolField(info.value().body, "aborted"));

  auto closed = conn.Call("DELETE", "/v1/sessions/" + id);
  ASSERT_TRUE(closed.ok());
  ASSERT_EQ(closed.value().status, 200);
  EXPECT_EQ(JsonStrField(closed.value().body, "closed"), id);

  auto gone = conn.Call("GET", "/v1/sessions/" + id);
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone.value().status, 404);
  ASSERT_TRUE(server.Stop().ok());
}

TEST(ServerTest, EightConcurrentSessionsMatchOneShot) {
  constexpr int kSessions = 8;
  constexpr int kBatches = 4;
  constexpr int kLinesPerBatch = 100;

  InferenceServer server;
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  // A scraper hammers /metrics for the whole run: the exposition must stay
  // parseable mid-ingest, not just at quiescence.
  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    HttpConnection conn;
    if (!conn.Connect("127.0.0.1", port).ok()) return;
    while (!done.load(std::memory_order_relaxed)) {
      auto resp = conn.Call("GET", "/metrics");
      if (!resp.ok()) break;
      EXPECT_EQ(resp.value().status, 200);
      EXPECT_TRUE(PrometheusParses(resp.value().body));
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::string> inputs(kSessions);
  std::vector<std::string> served(kSessions);
  std::vector<std::thread> tenants;
  tenants.reserve(kSessions);
  for (int t = 0; t < kSessions; ++t) {
    tenants.emplace_back([&, t] {
      HttpConnection conn;
      ASSERT_TRUE(conn.Connect("127.0.0.1", port).ok());
      // Odd tenants ingest chunk-parallel — results must be identical.
      const std::string config =
          t % 2 ? "{\"threads\": 3}" : "{}";
      const std::string id = CreateSession(conn, config);
      ASSERT_FALSE(id.empty());
      for (int b = 0; b < kBatches; ++b) {
        const std::string text =
            MakeDataset(t, kLinesPerBatch, b * kLinesPerBatch);
        inputs[t] += text;
        auto resp = conn.Call("POST", "/v1/sessions/" + id + "/ingest", text,
                              "application/x-ndjson");
        ASSERT_TRUE(resp.ok()) << resp.status().message();
        ASSERT_EQ(resp.value().status, 200) << resp.value().body;
      }
      auto resp =
          conn.Call("GET", "/v1/sessions/" + id + "/schema?format=type");
      ASSERT_TRUE(resp.ok()) << resp.status().message();
      ASSERT_EQ(resp.value().status, 200) << resp.value().body;
      served[t] = resp.value().body;
      auto closed = conn.Call("DELETE", "/v1/sessions/" + id);
      ASSERT_TRUE(closed.ok());
      EXPECT_EQ(closed.value().status, 200);
    });
  }
  for (auto& t : tenants) t.join();
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0);

  for (int t = 0; t < kSessions; ++t) {
    const std::string reference = OneShotSchemaText(inputs[t]);
    EXPECT_EQ(served[t], reference + "\n") << "tenant " << t;
    auto a = types::ParseType(served[t]);
    auto b = types::ParseType(reference);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(types::TypeEquals(a.value(), b.value())) << "tenant " << t;
  }
  EXPECT_EQ(server.sessions().size(), 0u);
  ASSERT_TRUE(server.Stop().ok());
}

// ---------------------------------------------------------------------------
// Policy aborts

TEST(ServerTest, PolicyAbortFreezesSessionWithPreAbortSchema) {
  InferenceServer server;
  ASSERT_TRUE(server.Start().ok());
  HttpConnection conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.port()).ok());

  const std::string config =
      "{\"policy\": \"fail-above-rate\", \"max_error_rate\": 0.2, "
      "\"min_lines_for_rate\": 10}";
  const std::string id = CreateSession(conn, config);
  ASSERT_FALSE(id.empty());

  std::string poisoned;
  for (int i = 0; i < 30; ++i) {
    poisoned += i % 3 == 2 ? "not json\n"
                           : "{\"a\": " + std::to_string(i) + "}\n";
  }
  auto resp = conn.Call("POST", "/v1/sessions/" + id + "/ingest", poisoned,
                        "application/x-ndjson");
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  // A policy abort is tenant data trouble, not a server fault.
  EXPECT_EQ(resp.value().status, 422) << resp.value().body;
  EXPECT_TRUE(JsonBoolField(resp.value().body, "aborted"));
  EXPECT_FALSE(JsonStrField(resp.value().body, "error").empty());

  // The session is frozen: further ingests conflict with its final state.
  auto again = conn.Call("POST", "/v1/sessions/" + id + "/ingest",
                         "{\"a\": 1}\n", "application/x-ndjson");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().status, 409);

  // The pre-abort schema stays queryable and matches a local streaming run
  // under the identical policy — the same state a checkpointed CLI saves.
  core::StreamingOptions opts;
  opts.on_malformed = json::MalformedLinePolicy::kFailAboveRate;
  opts.max_error_rate = 0.2;
  opts.min_lines_for_rate = 10;
  core::StreamingInferencer reference(opts);
  EXPECT_FALSE(reference.AddJsonLines(poisoned).ok());

  auto schema = conn.Call("GET", "/v1/sessions/" + id + "/schema?format=type");
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema.value().status, 200);
  EXPECT_EQ(schema.value().body, reference.Snapshot().ToString() + "\n");

  auto info = conn.Call("GET", "/v1/sessions/" + id);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(JsonBoolField(info.value().body, "aborted"));
  EXPECT_EQ(static_cast<uint64_t>(JsonNumField(info.value().body, "records")),
            reference.record_count());
  ASSERT_TRUE(server.Stop().ok());
}

// ---------------------------------------------------------------------------
// Durability across a server restart

TEST(ServerTest, CheckpointSurvivesServerRestart) {
  const std::string ckpt = ::testing::TempDir() + "jsonsi_server_test.ckpt";
  std::remove(ckpt.c_str());
  const std::string config =
      "{\"checkpoint\": \"" + ckpt + "\"}";
  const std::string first_half = MakeDataset(/*variant=*/2, 120, 0);
  const std::string second_half = MakeDataset(/*variant=*/2, 120, 120);

  {
    InferenceServer server;
    ASSERT_TRUE(server.Start().ok());
    HttpConnection conn;
    ASSERT_TRUE(conn.Connect("127.0.0.1", server.port()).ok());
    const std::string id = CreateSession(conn, config);
    ASSERT_FALSE(id.empty());
    auto resp = conn.Call("POST", "/v1/sessions/" + id + "/ingest",
                          first_half, "application/x-ndjson");
    ASSERT_TRUE(resp.ok()) << resp.status().message();
    ASSERT_EQ(resp.value().status, 200) << resp.value().body;
    // Stop() is the SIGTERM drain path: it must checkpoint the durable
    // session even though nobody DELETEd it.
    ASSERT_TRUE(server.Stop().ok());
  }

  {
    InferenceServer server;
    ASSERT_TRUE(server.Start().ok());
    HttpConnection conn;
    ASSERT_TRUE(conn.Connect("127.0.0.1", server.port()).ok());
    auto created = conn.Call(
        "POST", "/v1/sessions",
        "{\"checkpoint\": \"" + ckpt + "\", \"resume\": true}");
    ASSERT_TRUE(created.ok()) << created.status().message();
    ASSERT_EQ(created.value().status, 201) << created.value().body;
    const std::string id = JsonStrField(created.value().body, "session");
    EXPECT_EQ(JsonNumField(created.value().body, "resumed_records"), 120);
    EXPECT_TRUE(JsonBoolField(created.value().body, "durable"));

    auto resp = conn.Call("POST", "/v1/sessions/" + id + "/ingest",
                          second_half, "application/x-ndjson");
    ASSERT_TRUE(resp.ok()) << resp.status().message();
    ASSERT_EQ(resp.value().status, 200) << resp.value().body;

    // Restart + resume == one uninterrupted stream, by associativity.
    ExpectSchemaMatchesOneShot(conn, id, first_half + second_half);
    ASSERT_TRUE(server.Stop().ok());
  }
  std::remove(ckpt.c_str());
}

TEST(ServerTest, ResumeWithoutCheckpointFileIs400) {
  const std::string ckpt = ::testing::TempDir() + "jsonsi_server_absent.ckpt";
  std::remove(ckpt.c_str());
  InferenceServer server;
  ASSERT_TRUE(server.Start().ok());
  auto resp = HttpCall(
      "127.0.0.1", server.port(), "POST", "/v1/sessions",
      "{\"checkpoint\": \"" + ckpt + "\", \"resume\": true}");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, 400);
  ASSERT_TRUE(server.Stop().ok());
}

// ---------------------------------------------------------------------------
// Repository publishing

TEST(ServerTest, ClosingNamedSessionPublishesToRepository) {
  const std::string repo = ::testing::TempDir() + "jsonsi_server_repo.json";
  std::remove(repo.c_str());
  ServerOptions options;
  options.repository_path = repo;
  InferenceServer server(options);
  ASSERT_TRUE(server.Start().ok());

  HttpConnection conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.port()).ok());
  const std::string id = CreateSession(conn, "{\"source\": \"events\"}");
  ASSERT_FALSE(id.empty());
  auto ingest = conn.Call("POST", "/v1/sessions/" + id + "/ingest",
                          MakeDataset(3, 40), "application/x-ndjson");
  ASSERT_TRUE(ingest.ok());
  ASSERT_EQ(ingest.value().status, 200);

  auto closed = conn.Call("DELETE", "/v1/sessions/" + id);
  ASSERT_TRUE(closed.ok());
  ASSERT_EQ(closed.value().status, 200) << closed.value().body;
  EXPECT_EQ(JsonStrField(closed.value().body, "published_source"), "events");
  EXPECT_GE(JsonNumField(closed.value().body, "published_version"), 1);
  ASSERT_TRUE(server.Stop().ok());
  std::remove(repo.c_str());
}

// ---------------------------------------------------------------------------
// Shutdown latch

TEST(ServerTest, ShutdownLatchTripsOnSignalAndProgrammatically) {
  InstallShutdownSignalHandlers();
  ResetShutdownForTesting();
  EXPECT_FALSE(ShutdownRequested());

  RequestShutdown();
  EXPECT_TRUE(ShutdownRequested());
  WaitForShutdown();  // already tripped: returns immediately
  ResetShutdownForTesting();
  EXPECT_FALSE(ShutdownRequested());

  // A real SIGTERM takes the identical path: flag plus self-pipe wakeup,
  // nothing else — the handler is async-signal-safe by construction.
  ASSERT_EQ(raise(SIGTERM), 0);
  EXPECT_TRUE(ShutdownRequested());
  WaitForShutdown();
  ResetShutdownForTesting();
  EXPECT_FALSE(ShutdownRequested());
}

}  // namespace
}  // namespace jsonsi::server
