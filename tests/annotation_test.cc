// Property-based suites for the Annotation monoid lattice
// (annotate/annotation.h) and the tagged-union refinement built on it
// (annotate/refine.h):
//
//   associativity:  (A . B) . C == A . (B . C)
//   commutativity:  A . B == B . A
//   identity:       A . e == e . A == A
//   fold order:     any bracketing/permutation of a fold agrees with serial
//   path parity:    DOM ObserveValue == tokenizer-driven DirectInferType
//
// checked over randomly generated values (parameterized by seed). Every law
// runs in TWO modes (testing::Combine), with type interning + fusion
// memoization on and off: annotations are keyed by schema position, not by
// (hash-consed) type node, so acceleration of the type side must never
// change a single accumulated statistic. A failure in only the accelerated
// leg would pinpoint annotation state leaking into the shared caches.
//
// Plus deterministic unit tests for the bounded components (bottom-K
// exactness, truncation flags, sketch merge = observe-union) and for the
// refinement analysis (detection, conservatism under truncation).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "annotate/annotation.h"
#include "annotate/refine.h"
#include "fusion/fuse.h"
#include "inference/direct_infer.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "json/serializer.h"
#include "random_value_gen.h"
#include "types/type.h"

namespace jsonsi::annotate {
namespace {

using json::ValueRef;
using types::TypeRef;

enum class AccelMode { kPlain, kAccelerated };

const char* ModeName(AccelMode mode) {
  return mode == AccelMode::kPlain ? "plain" : "accelerated";
}

fusion::Fuser MakeFuser(AccelMode mode) {
  fusion::FuseOptions opts;
  if (mode == AccelMode::kPlain) {
    opts.intern = false;
    opts.memoize = false;
    opts.dedup = false;
  }
  return fusion::Fuser(opts);
}

Annotation AnnotationOf(const json::Value& value) {
  Annotation a;
  ObserveValue(value, &a);
  return a;
}

class AnnotationProperties
    : public ::testing::TestWithParam<std::tuple<uint64_t, AccelMode>> {
 protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  AccelMode mode() const { return std::get<1>(GetParam()); }
};

TEST_P(AnnotationProperties, MergeIsAssociative) {
  auto values = jsonsi::testing::RandomValues(seed(), 3);
  fusion::Fuser fuser = MakeFuser(mode());
  // Fusing the types alongside exercises the interning/memoization caches
  // between annotation merges.
  TypeRef fused = types::Type::Empty();
  for (const ValueRef& v : values) {
    fused = fuser.Fuse(fused, inference::InferType(*v));
  }
  Annotation a = AnnotationOf(*values[0]);
  Annotation b = AnnotationOf(*values[1]);
  Annotation c = AnnotationOf(*values[2]);

  Annotation left = a.Clone();   // (a . b) . c
  left.MergeFrom(b);
  left.MergeFrom(c);
  Annotation bc = b.Clone();     // a . (b . c)
  bc.MergeFrom(c);
  Annotation right = a.Clone();
  right.MergeFrom(bc);
  EXPECT_TRUE(left.Equals(right)) << "mode=" << ModeName(mode());
}

TEST_P(AnnotationProperties, MergeIsCommutative) {
  auto values = jsonsi::testing::RandomValues(seed(), 2);
  fusion::Fuser fuser = MakeFuser(mode());
  fuser.Fuse(inference::InferType(*values[0]),
             inference::InferType(*values[1]));
  Annotation a = AnnotationOf(*values[0]);
  Annotation b = AnnotationOf(*values[1]);
  Annotation ab = a.Clone();
  ab.MergeFrom(b);
  Annotation ba = b.Clone();
  ba.MergeFrom(a);
  EXPECT_TRUE(ab.Equals(ba)) << "mode=" << ModeName(mode());
}

TEST_P(AnnotationProperties, IdentityIsNeutral) {
  Annotation a = AnnotationOf(*jsonsi::testing::RandomValue(seed()));
  Annotation left;  // e . a
  left.MergeFrom(a);
  EXPECT_TRUE(left.Equals(a));
  Annotation right = a.Clone();  // a . e
  right.MergeFrom(Annotation());
  EXPECT_TRUE(right.Equals(a));
  Annotation e1, e2;  // e . e == e
  e1.MergeFrom(e2);
  EXPECT_TRUE(e1.Equals(Annotation()));
}

TEST_P(AnnotationProperties, FoldOrderIndependent) {
  auto values = jsonsi::testing::RandomValues(seed(), 16);
  fusion::Fuser fuser = MakeFuser(mode());

  // Serial left fold, with the types fused alongside.
  Annotation serial;
  TypeRef serial_type = types::Type::Empty();
  for (const ValueRef& v : values) {
    serial.MergeFrom(AnnotationOf(*v));
    serial_type = fuser.Fuse(serial_type, inference::InferType(*v));
  }

  // Shuffled fold.
  std::vector<size_t> order(values.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::mt19937_64 rng(seed() * 7919 + 17);
  std::shuffle(order.begin(), order.end(), rng);
  Annotation shuffled;
  TypeRef shuffled_type = types::Type::Empty();
  for (size_t i : order) {
    shuffled.MergeFrom(AnnotationOf(*values[i]));
    shuffled_type = fuser.Fuse(shuffled_type, inference::InferType(*values[i]));
  }
  EXPECT_TRUE(serial.Equals(shuffled)) << "mode=" << ModeName(mode());
  EXPECT_TRUE(serial_type->Equals(*shuffled_type));

  // Pairwise tree reduction, the parallel pipeline's bracketing.
  std::vector<Annotation> level;
  for (const ValueRef& v : values) level.push_back(AnnotationOf(*v));
  while (level.size() > 1) {
    std::vector<Annotation> next;
    for (size_t i = 0; i < level.size(); i += 2) {
      if (i + 1 < level.size()) level[i].MergeFrom(level[i + 1]);
      next.push_back(std::move(level[i]));
    }
    level = std::move(next);
  }
  EXPECT_TRUE(serial.Equals(level[0])) << "mode=" << ModeName(mode());

  // And the refinement derived from the fold is order-independent too.
  EXPECT_EQ(RefineTaggedUnions(serial) == RefineTaggedUnions(level[0]), true);
}

TEST_P(AnnotationProperties, DomAndDirectPathsAgree) {
  auto values = jsonsi::testing::RandomValues(seed(), 8);
  fusion::Fuser fuser = MakeFuser(mode());
  json::ParseOptions parse;
  Annotation dom;
  Annotation direct;
  for (const ValueRef& v : values) {
    std::string text = json::ToJson(*v);
    Annotation rec_dom;
    TypeRef t_dom = inference::InferType(*v, &rec_dom);
    Annotation rec_direct;
    auto t_direct = inference::DirectInferType(text, parse, &rec_direct);
    ASSERT_TRUE(t_direct.ok()) << t_direct.status().message();
    EXPECT_TRUE(t_dom->Equals(*t_direct.value()));
    EXPECT_TRUE(rec_dom.Equals(rec_direct))
        << "mode=" << ModeName(mode()) << " text=" << text;
    // Annotated inference must return the same type as un-annotated.
    EXPECT_TRUE(t_dom->Equals(*inference::InferType(*v)));
    auto t_plain = inference::DirectInferType(text, parse);
    ASSERT_TRUE(t_plain.ok());
    EXPECT_TRUE(t_direct.value()->Equals(*t_plain.value()));
    fuser.Fuse(t_dom, t_direct.value());
    dom.MergeFrom(rec_dom);
    direct.MergeFrom(rec_direct);
  }
  EXPECT_TRUE(dom.Equals(direct));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AnnotationProperties,
    ::testing::Combine(::testing::Range<uint64_t>(0, 20),
                       ::testing::Values(AccelMode::kPlain,
                                         AccelMode::kAccelerated)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, AccelMode>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
             ModeName(std::get<1>(info.param));
    });

// ------------------------------------------------------- bounded components

TEST(DistinctSampleTest, BottomKIsExactUnderAnySplit) {
  // 40 distinct encoded values; the kept sample must be the K smallest no
  // matter how observations are split across partial samples.
  std::vector<std::string> encoded;
  for (int i = 0; i < 40; ++i) {
    encoded.push_back(EncodeStr("v" + std::to_string(100 + i * 3)));
  }
  std::vector<std::string> expected = encoded;
  std::sort(expected.begin(), expected.end());
  expected.resize(kDistinctSampleCap);

  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::string> shuffled = encoded;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    DistinctSample parts[3];
    for (size_t i = 0; i < shuffled.size(); ++i) {
      parts[rng() % 3].Observe(shuffled[i]);
    }
    DistinctSample merged;
    for (const DistinctSample& p : parts) merged.MergeFrom(p);
    EXPECT_EQ(merged.values, expected);
    EXPECT_TRUE(merged.truncated);
    EXPECT_EQ(merged.observations, encoded.size());
  }
}

TEST(DistinctSampleTest, SmallSetsStayComplete) {
  DistinctSample s;
  s.Observe(EncodeNum(2));
  s.Observe(EncodeNum(1));
  s.Observe(EncodeNum(2));  // duplicate
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.values.size(), 2u);
  EXPECT_EQ(s.observations, 3u);
}

TEST(DistinctSampleTest, OversizedValuesCountButDoNotSample) {
  DistinctSample s;
  s.Observe(EncodeStr(std::string(2 * kMaxSampledScalarBytes, 'x')));
  EXPECT_TRUE(s.truncated);
  EXPECT_TRUE(s.values.empty());
  EXPECT_EQ(s.observations, 1u);
}

TEST(DistinctSketchTest, MergeEqualsObservingTheUnion) {
  DistinctSketch left, right, whole;
  for (int i = 0; i < 200; ++i) {
    std::string e = EncodeNum(i);
    (i % 2 ? left : right).Observe(e);
    whole.Observe(e);
  }
  DistinctSketch merged = left;
  merged.MergeFrom(right);
  EXPECT_TRUE(merged.Equals(whole));
  // The estimate is a derived quantity; sanity-check it is in the right
  // ballpark (p=8 standard error ~6.5%, allow a generous 25%).
  EXPECT_NEAR(whole.Estimate(), 200.0, 50.0);
}

TEST(MinMaxTest, NegativeZeroCanonicalizes) {
  Annotation a;
  a.ObserveNum(-0.0);
  Annotation b;
  b.ObserveNum(0.0);
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(std::signbit(a.num_range.min));
}

TEST(AnnotationNodeTest, FieldPresenceCountsOptionality) {
  auto parse = [](std::string_view text) {
    auto v = json::Parse(text);
    EXPECT_TRUE(v.ok());
    return std::move(v).value();
  };
  Annotation root;
  ObserveValue(*parse(R"({"id":1,"tag":"a"})"), &root);
  ObserveValue(*parse(R"({"id":2})"), &root);
  EXPECT_EQ(root.record_count, 2u);
  ASSERT_EQ(root.fields.count("id"), 1u);
  ASSERT_EQ(root.fields.count("tag"), 1u);
  EXPECT_EQ(root.fields.at("id").present, 2u);
  EXPECT_EQ(root.fields.at("tag").present, 1u);
  EXPECT_TRUE(root.fields.at("id").node->num_range.seen);
  EXPECT_EQ(root.fields.at("id").node->num_range.min, 1.0);
  EXPECT_EQ(root.fields.at("id").node->num_range.max, 2.0);
}

TEST(ScalarEncodingTest, DisplayRoundTrips) {
  EXPECT_EQ(DecodeScalarDisplay(EncodeNull()), "null");
  EXPECT_EQ(DecodeScalarDisplay(EncodeBool(true)), "true");
  EXPECT_EQ(DecodeScalarDisplay(EncodeBool(false)), "false");
  EXPECT_EQ(DecodeScalarDisplay(EncodeNum(42)), "42");
  EXPECT_EQ(DecodeScalarDisplay(EncodeStr("id")), "\"id\"");
}

// ------------------------------------------------------------- refinement

Annotation AnnotateLines(const std::vector<std::string>& lines) {
  Annotation acc;
  for (const std::string& line : lines) {
    auto v = json::Parse(line);
    EXPECT_TRUE(v.ok()) << line;
    Annotation rec;
    ObserveValue(*v.value(), &rec);
    acc.MergeFrom(rec);
  }
  return acc;
}

TEST(RefineTest, DetectsDiscriminator) {
  Annotation root = AnnotateLines({
      R"({"type":"a","x":1})",
      R"({"type":"a","x":2})",
      R"({"type":"b","y":"s"})",
  });
  RefinementMap m = RefineTaggedUnions(root);
  ASSERT_EQ(m.count(""), 1u);
  const Refinement& r = m.at("");
  EXPECT_EQ(r.discriminator, "type");
  ASSERT_EQ(r.variants.size(), 2u);
  // Variants sort by smallest discriminator value: "a" then "b".
  EXPECT_EQ(r.variants[0].values, std::vector<std::string>{EncodeStr("a")});
  EXPECT_EQ(r.variants[0].count, 2u);
  EXPECT_EQ(r.variants[0].key_presence.at("x"), 2u);
  EXPECT_EQ(r.variants[1].values, std::vector<std::string>{EncodeStr("b")});
  EXPECT_EQ(r.variants[1].count, 1u);
  EXPECT_EQ(r.variants[1].key_presence.at("y"), 1u);
}

TEST(RefineTest, DetectsNestedAndArrayPositions) {
  Annotation root = AnnotateLines({
      R"({"ev":[{"kind":"click","x":1},{"kind":"move","dx":2}]})",
      R"({"ev":[{"kind":"click","x":3}]})",
  });
  RefinementMap m = RefineTaggedUnions(root);
  ASSERT_EQ(m.count("ev[]"), 1u);
  EXPECT_EQ(m.at("ev[]").discriminator, "kind");
  EXPECT_EQ(m.at("ev[]").variants.size(), 2u);
}

TEST(RefineTest, SingleShapeDoesNotRefine) {
  Annotation root = AnnotateLines({
      R"({"type":"a","x":1})",
      R"({"type":"b","x":2})",
  });
  EXPECT_TRUE(RefineTaggedUnions(root).empty());
}

TEST(RefineTest, SharedValueCollapsesGroups) {
  // Two shapes, but the only always-present field holds the same value in
  // both — one union-find group, so no partition exists.
  Annotation root = AnnotateLines({
      R"({"t":"a","x":1})",
      R"({"t":"a","y":2})",
  });
  EXPECT_TRUE(RefineTaggedUnions(root).empty());
}

TEST(RefineTest, TruncatedSampleDisqualifiesCandidate) {
  // >kDistinctSampleCap distinct "id" values truncate the per-shape sample;
  // a truncated candidate must be disqualified, not guessed at.
  std::vector<std::string> lines;
  for (size_t i = 0; i < kDistinctSampleCap + 4; ++i) {
    lines.push_back(R"({"id":"v)" + std::to_string(i) + R"(","x":1})");
  }
  lines.push_back(R"({"id":"zz","y":2})");
  EXPECT_TRUE(RefineTaggedUnions(AnnotateLines(lines)).empty());
}

TEST(RefineTest, NonCoveringFieldIsNotACandidate) {
  // "type" misses from the second shape entirely; no field is present in
  // every record of every shape, so nothing can discriminate.
  Annotation root = AnnotateLines({
      R"({"type":"a","x":1})",
      R"({"y":2})",
  });
  EXPECT_TRUE(RefineTaggedUnions(root).empty());
}

TEST(RefineTest, MultiValueVariantGroups) {
  // Values "a" and "b" select the same shape set {x}, "c" selects {y}:
  // union-find pools a+b into one variant with both values.
  Annotation root = AnnotateLines({
      R"({"type":"a","x":1})",
      R"({"type":"b","x":2})",
      R"({"type":"c","y":"s"})",
      R"({"type":"c"})",
  });
  RefinementMap m = RefineTaggedUnions(root);
  ASSERT_EQ(m.count(""), 1u);
  const Refinement& r = m.at("");
  ASSERT_EQ(r.variants.size(), 2u);
  EXPECT_EQ(r.variants[0].values,
            (std::vector<std::string>{EncodeStr("a"), EncodeStr("b")}));
  EXPECT_EQ(r.variants[0].count, 2u);
  EXPECT_EQ(r.variants[1].values, std::vector<std::string>{EncodeStr("c")});
  EXPECT_EQ(r.variants[1].count, 2u);
  EXPECT_EQ(r.variants[1].key_presence.at("type"), 2u);
  EXPECT_EQ(r.variants[1].key_presence.at("y"), 1u);
}

TEST(RefineTest, FormatIsDeterministic) {
  Annotation root = AnnotateLines({
      R"({"type":"a","x":1})",
      R"({"type":"b","y":"s"})",
  });
  RefinementMap m = RefineTaggedUnions(root);
  std::string report = FormatRefinements(m);
  EXPECT_NE(report.find("discriminated by \"type\" into 2 variants"),
            std::string::npos)
      << report;
  EXPECT_EQ(report, FormatRefinements(RefineTaggedUnions(root)));
}

}  // namespace
}  // namespace jsonsi::annotate
