// Tests for chunked JSON-Lines ingestion (json/jsonl_chunk.h).
//
// The load-bearing property is *serial equivalence*: for any buffer, any
// chunk count, and any MalformedLinePolicy, the split/parse/replay pipeline
// must return the same status, the same values, and the same IngestStats —
// byte offsets, line numbers, recorded errors — as one serial ParseJsonLines
// over the whole buffer. The differential harness below checks exactly that
// over a gallery of adversarial inputs (CRLF pairs straddling chunk
// boundaries, BOM, blank runs, malformed lines at boundaries, no trailing
// newline) crossed with every policy and chunk counts 1..8.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "json/jsonl.h"
#include "json/jsonl_chunk.h"

namespace jsonsi::json {
namespace {

// ---------------------------------------------------------------- splitter

void CheckSpanInvariants(std::string_view text, size_t max_chunks) {
  auto spans = SplitJsonLines(text, max_chunks);
  if (text.empty()) {
    EXPECT_TRUE(spans.empty());
    return;
  }
  ASSERT_FALSE(spans.empty());
  EXPECT_LE(spans.size(), std::max<size_t>(1, max_chunks));
  EXPECT_EQ(spans.front().begin, 0u);
  EXPECT_EQ(spans.back().end, text.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_LT(spans[i].begin, spans[i].end) << "empty span " << i;
    if (i > 0) {
      EXPECT_EQ(spans[i].begin, spans[i - 1].end) << "gap at " << i;
    }
    // Every internal boundary sits just after a '\n' — no line or CRLF
    // pair is ever split.
    if (i + 1 < spans.size()) {
      EXPECT_EQ(text[spans[i].end - 1], '\n') << "mid-line cut at " << i;
    }
  }
}

TEST(SplitJsonLinesTest, EmptyInputYieldsNoSpans) {
  EXPECT_TRUE(SplitJsonLines("", 4).empty());
}

TEST(SplitJsonLinesTest, SingleChunkCoversEverything) {
  auto spans = SplitJsonLines("1\n2\n3\n", 1);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin, 0u);
  EXPECT_EQ(spans[0].end, 6u);
}

TEST(SplitJsonLinesTest, InvariantsAcrossShapes) {
  const std::string crlf_heavy =
      "{\"a\":1}\r\n{\"a\":22}\r\n{\"a\":333}\r\n{\"a\":4444}\r\n";
  const std::string inputs[] = {
      "1\n2\n3\n4\n5\n6\n7\n8\n",
      "1\n2\n3\n4\n5\n6\n7\n8",        // no trailing newline
      crlf_heavy,
      "single line without newline",
      "\n\n\n\n",
      std::string(1000, 'x') + "\n1\n", // one huge line up front
      "1\n" + std::string(1000, 'x'),   // one huge line at the end
  };
  for (const std::string& text : inputs) {
    for (size_t chunks = 1; chunks <= 9; ++chunks) {
      SCOPED_TRACE("chunks=" + std::to_string(chunks));
      CheckSpanInvariants(text, chunks);
    }
  }
}

TEST(SplitJsonLinesTest, NeverSplitsCrlfPairs) {
  // Line lengths tuned so naive byte targets land between '\r' and '\n'.
  std::string text;
  for (int i = 0; i < 40; ++i) {
    text += "{\"k\":" + std::string(1 + i % 7, '1') + "}\r\n";
  }
  for (size_t chunks = 2; chunks <= 16; ++chunks) {
    auto spans = SplitJsonLines(text, chunks);
    for (size_t i = 0; i + 1 < spans.size(); ++i) {
      ASSERT_EQ(text[spans[i].end - 1], '\n');
      ASSERT_NE(text[spans[i].end], '\n');  // next chunk starts a real line
    }
  }
}

// ---------------------------------------------------- differential harness

void ExpectSameStats(const IngestStats& serial, const IngestStats& chunked) {
  EXPECT_EQ(serial.lines_read, chunked.lines_read);
  EXPECT_EQ(serial.blank_lines, chunked.blank_lines);
  EXPECT_EQ(serial.records, chunked.records);
  EXPECT_EQ(serial.malformed_lines, chunked.malformed_lines);
  EXPECT_EQ(serial.bytes_read, chunked.bytes_read);
  EXPECT_EQ(serial.bytes_consumed, chunked.bytes_consumed);
  ASSERT_EQ(serial.errors.size(), chunked.errors.size());
  for (size_t i = 0; i < serial.errors.size(); ++i) {
    EXPECT_EQ(serial.errors[i].line_number, chunked.errors[i].line_number);
    EXPECT_EQ(serial.errors[i].byte_offset, chunked.errors[i].byte_offset);
    EXPECT_EQ(serial.errors[i].message, chunked.errors[i].message);
  }
}

// Runs the chunked pipeline and the serial reader over `text` and asserts
// they are indistinguishable: status (including message), stats, and the
// delivered values.
void ExpectChunkedMatchesSerial(std::string_view text, size_t max_chunks,
                                const IngestOptions& options) {
  IngestStats serial_stats;
  std::vector<ValueRef> serial_values;
  Status serial_status = ReadJsonLines(
      text,
      [&](ValueRef v) {
        serial_values.push_back(std::move(v));
        return true;
      },
      options, &serial_stats);

  auto spans = SplitJsonLines(text, max_chunks);
  std::vector<ChunkOutcome> outcomes;
  outcomes.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    outcomes.push_back(ParseJsonLinesChunk(
        text.substr(spans[i].begin, spans[i].size()), options.parse,
        options.max_recorded_errors, i == 0));
  }
  IngestStats chunk_stats;
  ChunkReplay replay = ReplayChunkPolicy(outcomes, options, &chunk_stats);

  EXPECT_EQ(serial_status.ok(), replay.status.ok());
  EXPECT_EQ(serial_status.ToString(), replay.status.ToString());
  ExpectSameStats(serial_stats, chunk_stats);

  std::vector<ValueRef> chunk_values =
      TakeIncludedValues(std::move(outcomes), replay);
  ASSERT_EQ(serial_values.size(), chunk_values.size());
  for (size_t i = 0; i < serial_values.size(); ++i) {
    EXPECT_TRUE(serial_values[i]->Equals(*chunk_values[i])) << "value " << i;
  }
}

IngestOptions WithPolicy(MalformedLinePolicy policy) {
  IngestOptions o;
  o.on_malformed = policy;
  o.max_error_rate = 0.3;
  o.min_lines_for_rate = 3;
  return o;
}

void RunDifferentialGallery(std::string_view text) {
  const MalformedLinePolicy policies[] = {MalformedLinePolicy::kFail,
                                          MalformedLinePolicy::kSkip,
                                          MalformedLinePolicy::kFailAboveRate};
  for (MalformedLinePolicy policy : policies) {
    for (size_t chunks = 1; chunks <= 8; ++chunks) {
      SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)) +
                   " chunks=" + std::to_string(chunks));
      ExpectChunkedMatchesSerial(text, chunks, WithPolicy(policy));
    }
  }
}

TEST(ChunkedIngestDifferentialTest, CleanInput) {
  RunDifferentialGallery("{\"a\":1}\n{\"a\":2}\n{\"b\":[1,2]}\n\"s\"\nnull\n");
}

TEST(ChunkedIngestDifferentialTest, CrlfAndBom) {
  RunDifferentialGallery(
      "\xEF\xBB\xBF{\"a\":1}\r\n{\"a\":2}\r\n{\"a\":3}\r\n{\"a\":4}\r\n");
}

TEST(ChunkedIngestDifferentialTest, BlankRunsAndNoTrailingNewline) {
  RunDifferentialGallery("1\n\n  \n\t\r\n2\n\n3");
}

TEST(ChunkedIngestDifferentialTest, MalformedEverywhere) {
  // Malformed lines at the start, interior, and final (newline-less) line;
  // every chunk count puts some of them on a boundary.
  RunDifferentialGallery("nope\n{\"a\":1}\n{bad\n{\"a\":2}\n{\"a\":3}\n}{");
}

TEST(ChunkedIngestDifferentialTest, MalformedFirstLine) {
  RunDifferentialGallery("{oops\n1\n2\n3\n4\n5\n");
}

TEST(ChunkedIngestDifferentialTest, AllMalformed) {
  RunDifferentialGallery("a\nb\nc\nd\ne\nf\n");
}

TEST(ChunkedIngestDifferentialTest, RateCreepsAcrossChunks) {
  // The rate stays legal early and trips deep into the buffer, so the
  // replay has to abort inside a *later* chunk using cumulative counts.
  std::string text;
  for (int i = 0; i < 20; ++i) text += "{\"ok\":" + std::to_string(i) + "}\n";
  for (int i = 0; i < 12; ++i) {
    text += "broken-line-" + std::to_string(i) + "\n";
  }
  RunDifferentialGallery(text);
}

TEST(ChunkedIngestDifferentialTest, EmptyAndDegenerate) {
  RunDifferentialGallery("");
  RunDifferentialGallery("\n");
  RunDifferentialGallery("1");
  RunDifferentialGallery("nope");
}

TEST(ChunkedIngestDifferentialTest, ErrorCapRespected) {
  std::string text;
  for (int i = 0; i < 30; ++i) text += "bad" + std::to_string(i) + "\n";
  IngestOptions o = WithPolicy(MalformedLinePolicy::kSkip);
  o.max_recorded_errors = 3;
  for (size_t chunks = 1; chunks <= 8; ++chunks) {
    SCOPED_TRACE("chunks=" + std::to_string(chunks));
    ExpectChunkedMatchesSerial(text, chunks, o);
  }
}

TEST(ChunkedIngestDifferentialTest, RateBaselineFromEarlierStream) {
  // A dirty baseline makes the very first malformed line of this buffer
  // trip the rate policy — the replay must consult rate_baseline exactly
  // like the serial reader.
  IngestStats baseline;
  baseline.records = 10;
  baseline.malformed_lines = 4;
  IngestOptions o = WithPolicy(MalformedLinePolicy::kFailAboveRate);
  o.rate_baseline = &baseline;
  for (size_t chunks = 1; chunks <= 6; ++chunks) {
    SCOPED_TRACE("chunks=" + std::to_string(chunks));
    ExpectChunkedMatchesSerial("{\"a\":1}\nbad\n{\"a\":2}\n", chunks, o);
  }
}

TEST(ChunkedIngestTest, KFailMessageMatchesSerialLineNumber) {
  const std::string text = "1\n2\n3\n4\nboom\n5\n";
  IngestOptions o;  // kFail
  auto spans = SplitJsonLines(text, 3);
  std::vector<ChunkOutcome> outcomes;
  for (size_t i = 0; i < spans.size(); ++i) {
    outcomes.push_back(ParseJsonLinesChunk(
        std::string_view(text).substr(spans[i].begin, spans[i].size()),
        o.parse, o.max_recorded_errors, i == 0));
  }
  IngestStats stats;
  ChunkReplay replay = ReplayChunkPolicy(outcomes, o, &stats);
  ASSERT_FALSE(replay.status.ok());
  EXPECT_NE(replay.status.message().find("line 5"), std::string::npos)
      << replay.status;
  EXPECT_EQ(stats.records, 4u);
  EXPECT_EQ(TakeIncludedValues(std::move(outcomes), replay).size(), 4u);
}

}  // namespace
}  // namespace jsonsi::json
