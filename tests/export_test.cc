// Tests for the JSON Schema exporter and the mini validator, including the
// semantic agreement property: Matches(V, T) == Validates(V, ToJsonSchema(T))
// for randomized values and pipeline-produced types.

#include <gtest/gtest.h>

#include "export/json_schema.h"
#include "export/validator.h"
#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "json/serializer.h"
#include "random_value_gen.h"
#include "types/membership.h"
#include "types/printer.h"
#include "types/type_parser.h"

namespace jsonsi::exporter {
namespace {

types::TypeRef T(std::string_view text) {
  auto r = types::ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

json::ValueRef V(std::string_view text) {
  auto r = json::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

JsonSchemaOptions NoDraft() {
  JsonSchemaOptions opts;
  opts.include_draft_uri = false;
  return opts;
}

// --------------------------------------------------------------- exporter --

TEST(JsonSchemaExportTest, Basics) {
  EXPECT_TRUE(ToJsonSchema(T("Null"), NoDraft())
                  ->Equals(*V(R"({"type":"null"})")));
  EXPECT_TRUE(ToJsonSchema(T("Bool"), NoDraft())
                  ->Equals(*V(R"({"type":"boolean"})")));
  EXPECT_TRUE(ToJsonSchema(T("Num"), NoDraft())
                  ->Equals(*V(R"({"type":"number"})")));
  EXPECT_TRUE(ToJsonSchema(T("Str"), NoDraft())
                  ->Equals(*V(R"({"type":"string"})")));
}

TEST(JsonSchemaExportTest, DraftMarkerOnRoot) {
  json::ValueRef schema = ToJsonSchema(T("Num"));
  ASSERT_NE(schema->Find("$schema"), nullptr);
  EXPECT_NE(schema->Find("$schema")->str_value().find("2020-12"),
            std::string::npos);
}

TEST(JsonSchemaExportTest, RecordWithRequiredAndClosed) {
  json::ValueRef schema = ToJsonSchema(T("{a: Num, b: Str?}"), NoDraft());
  EXPECT_TRUE(schema->Equals(*V(R"({
    "type": "object",
    "properties": {"a": {"type":"number"}, "b": {"type":"string"}},
    "required": ["a"],
    "additionalProperties": false
  })"))) << json::ToJson(*schema);
}

TEST(JsonSchemaExportTest, OpenRecordsOption) {
  JsonSchemaOptions opts = NoDraft();
  opts.closed_records = false;
  json::ValueRef schema = ToJsonSchema(T("{a: Num}"), opts);
  EXPECT_EQ(schema->Find("additionalProperties"), nullptr);
}

TEST(JsonSchemaExportTest, UnionBecomesAnyOf) {
  json::ValueRef schema = ToJsonSchema(T("Num + Str"), NoDraft());
  const json::Value* any_of = schema->Find("anyOf");
  ASSERT_NE(any_of, nullptr);
  EXPECT_EQ(any_of->elements().size(), 2u);
}

TEST(JsonSchemaExportTest, StarArray) {
  EXPECT_TRUE(
      ToJsonSchema(T("[(Num)*]"), NoDraft())
          ->Equals(*V(R"({"type":"array","items":{"type":"number"}})")));
  EXPECT_TRUE(ToJsonSchema(T("[(Empty)*]"), NoDraft())
                  ->Equals(*V(R"({"type":"array","maxItems":0})")));
}

TEST(JsonSchemaExportTest, ExactArrayUsesPrefixItems) {
  json::ValueRef schema = ToJsonSchema(T("[Num, Str]"), NoDraft());
  EXPECT_TRUE(schema->Equals(*V(R"({
    "type": "array",
    "minItems": 2, "maxItems": 2,
    "prefixItems": [{"type":"number"}, {"type":"string"}],
    "items": false
  })"))) << json::ToJson(*schema);
}

TEST(JsonSchemaExportTest, TextOutputParses) {
  std::string text = ToJsonSchemaText(*T("{a: (Num + Str), b: [(Bool)*]?}"));
  EXPECT_TRUE(json::Parse(text).ok());
}

// -------------------------------------------------------------- validator --

TEST(ValidatorTest, TypeKeyword) {
  EXPECT_TRUE(Validates(*V("1"), *V(R"({"type":"number"})")));
  EXPECT_FALSE(Validates(*V("\"s\""), *V(R"({"type":"number"})")));
  EXPECT_TRUE(Validates(*V("3"), *V(R"({"type":"integer"})")));
  EXPECT_FALSE(Validates(*V("3.5"), *V(R"({"type":"integer"})")));
}

TEST(ValidatorTest, BooleanSchemas) {
  EXPECT_TRUE(Validates(*V("{}"), *V("true")));
  EXPECT_FALSE(Validates(*V("{}"), *V("false")));
}

TEST(ValidatorTest, RequiredAndAdditionalProperties) {
  json::ValueRef schema = V(R"({
    "type":"object",
    "properties":{"a":{"type":"number"}},
    "required":["a"],
    "additionalProperties":false
  })");
  EXPECT_TRUE(Validates(*V(R"({"a":1})"), *schema));
  EXPECT_FALSE(Validates(*V(R"({})"), *schema));           // missing required
  EXPECT_FALSE(Validates(*V(R"({"a":1,"b":2})"), *schema));  // extra key
  EXPECT_FALSE(Validates(*V(R"({"a":"s"})"), *schema));    // wrong type
}

TEST(ValidatorTest, ArraysItemsAndPrefix) {
  json::ValueRef star = V(R"({"type":"array","items":{"type":"number"}})");
  EXPECT_TRUE(Validates(*V("[1,2]"), *star));
  EXPECT_FALSE(Validates(*V("[1,\"s\"]"), *star));
  json::ValueRef tuple = V(R"({
    "type":"array","minItems":2,"maxItems":2,
    "prefixItems":[{"type":"number"},{"type":"string"}],"items":false
  })");
  EXPECT_TRUE(Validates(*V("[1,\"s\"]"), *tuple));
  EXPECT_FALSE(Validates(*V("[1]"), *tuple));
  EXPECT_FALSE(Validates(*V("[1,\"s\",true]"), *tuple));
}

TEST(ValidatorTest, AnyOfAndNot) {
  json::ValueRef schema =
      V(R"({"anyOf":[{"type":"number"},{"type":"string"}]})");
  EXPECT_TRUE(Validates(*V("1"), *schema));
  EXPECT_TRUE(Validates(*V("\"s\""), *schema));
  EXPECT_FALSE(Validates(*V("true"), *schema));
  EXPECT_FALSE(Validates(*V("1"), *V(R"({"not":{}})")));  // false schema
}

// ------------------------------------------- semantic agreement property --

class ExportAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExportAgreement, MembershipEqualsValidation) {
  // Build a fused schema over half the sample, then check agreement of the
  // two semantics on ALL values (members and non-members alike).
  auto values = jsonsi::testing::RandomValues(GetParam(), 40);
  fusion::TreeFuser fuser;
  for (size_t i = 0; i < 20; ++i) {
    fuser.Add(inference::InferType(*values[i]));
  }
  types::TypeRef schema = fuser.Finish();
  json::ValueRef exported = ToJsonSchema(schema);
  for (const auto& v : values) {
    EXPECT_EQ(types::Matches(*v, *schema), Validates(*v, *exported))
        << "disagreement on " << json::ToJson(*v) << "\nschema "
        << types::ToString(*schema);
  }
}

TEST_P(ExportAgreement, AgreementOnRawInferredTypes) {
  // Exact array types and deep nesting, pre-fusion.
  auto values = jsonsi::testing::RandomValues(GetParam() + 100, 20);
  for (size_t i = 0; i < values.size(); ++i) {
    types::TypeRef t = inference::InferType(*values[i]);
    json::ValueRef exported = ToJsonSchema(t);
    for (size_t j = 0; j < values.size(); ++j) {
      EXPECT_EQ(types::Matches(*values[j], *t),
                Validates(*values[j], *exported))
          << "value " << json::ToJson(*values[j]) << " type "
          << types::ToString(*t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExportAgreement,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace jsonsi::exporter
