// Tests for the C++ struct code generator: mapping rules, optionality,
// unions, arrays, nested structs, identifier sanitation, determinism, and
// end-to-end generation from an inferred schema.

#include <gtest/gtest.h>

#include "core/schema_inferencer.h"
#include "datagen/generator.h"
#include "export/cpp_codegen.h"
#include "types/type_parser.h"

namespace jsonsi::exporter {
namespace {

types::TypeRef T(std::string_view text) {
  auto r = types::ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

bool Contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(CppCodegenTest, ScalarFields) {
  std::string code = ToCppStructs(T("{b: Bool, n: Num, s: Str, z: Null}"));
  EXPECT_TRUE(Contains(code, "struct Root {")) << code;
  EXPECT_TRUE(Contains(code, "bool b;"));
  EXPECT_TRUE(Contains(code, "double n;"));
  EXPECT_TRUE(Contains(code, "std::string s;"));
  EXPECT_TRUE(Contains(code, "std::monostate z;"));
}

TEST(CppCodegenTest, OptionalFieldsWrapInOptional) {
  std::string code = ToCppStructs(T("{maybe: Str?}"));
  EXPECT_TRUE(Contains(code, "std::optional<std::string> maybe;")) << code;
}

TEST(CppCodegenTest, UnionsBecomeVariants) {
  std::string code = ToCppStructs(T("{v: (Num + Str)}"));
  EXPECT_TRUE(Contains(code, "std::variant<double, std::string> v;")) << code;
}

TEST(CppCodegenTest, ArraysBecomeVectors) {
  std::string code = ToCppStructs(T("{xs: [(Num)*], pair: [Num, Str]}"));
  EXPECT_TRUE(Contains(code, "std::vector<double> xs;")) << code;
  // Exact arrays use the union of element types.
  EXPECT_TRUE(
      Contains(code, "std::vector<std::variant<double, std::string>> pair;"))
      << code;
  std::string empty = ToCppStructs(T("{none: [(Empty)*]}"));
  EXPECT_TRUE(Contains(empty, "std::vector<std::monostate> none;")) << empty;
}

TEST(CppCodegenTest, NestedRecordsGetNamedStructs) {
  std::string code = ToCppStructs(T("{user: {id: Num, name: Str}}"));
  EXPECT_TRUE(Contains(code, "struct RootUser {")) << code;
  EXPECT_TRUE(Contains(code, "RootUser user;")) << code;
  // Nested struct is declared before its use site.
  EXPECT_LT(code.find("struct RootUser"), code.find("struct Root {"));
}

TEST(CppCodegenTest, BadIdentifiersAreSanitizedWithComment) {
  std::string code = ToCppStructs(T("{\"content-type\": Str, \"2fast\": Num}"));
  EXPECT_TRUE(Contains(code, "std::string content_type;")) << code;
  EXPECT_TRUE(Contains(code, "// JSON key: \"content-type\"")) << code;
  EXPECT_TRUE(Contains(code, "double f2fast;")) << code;
}

TEST(CppCodegenTest, NamespaceAndRootNameOptions) {
  CppCodegenOptions opts;
  opts.root_name = "Tweet";
  opts.namespace_name = "firehose";
  std::string code = ToCppStructs(T("{id: Num}"), opts);
  EXPECT_TRUE(Contains(code, "namespace firehose {")) << code;
  EXPECT_TRUE(Contains(code, "struct Tweet {")) << code;
  EXPECT_TRUE(Contains(code, "}  // namespace firehose")) << code;

  CppCodegenOptions bare;
  bare.namespace_name = "";
  EXPECT_FALSE(Contains(ToCppStructs(T("{id: Num}"), bare), "namespace"));
}

TEST(CppCodegenTest, NonRecordRootIsWrapped) {
  std::string code = ToCppStructs(T("Num + Str"));
  EXPECT_TRUE(Contains(code, "std::variant<double, std::string> value;"))
      << code;
}

TEST(CppCodegenTest, Deterministic) {
  types::TypeRef t = T("{a: Num, b: {c: (Str + Null)?}, d: [(Bool)*]}");
  EXPECT_EQ(ToCppStructs(t), ToCppStructs(t));
}

TEST(CppCodegenTest, EndToEndFromInferredSchema) {
  auto values =
      datagen::MakeGenerator(datagen::DatasetId::kGitHub, 5)->GenerateMany(500);
  core::Schema schema = core::SchemaInferencer().InferFromValues(values);
  CppCodegenOptions opts;
  opts.root_name = "PullRequest";
  std::string code = ToCppStructs(schema.type, opts);
  EXPECT_TRUE(Contains(code, "struct PullRequest {")) << code;
  EXPECT_TRUE(Contains(code, "struct PullRequestUser {"));
  EXPECT_TRUE(Contains(code, "#include <optional>"));
  // Every top-level schema field appears as a member.
  for (const auto& f : schema.type->fields()) {
    EXPECT_TRUE(Contains(code, " " + f.key + ";")) << f.key;
  }
}

}  // namespace
}  // namespace jsonsi::exporter
