// Tests for key-as-data detection: synthetic positives/negatives, threshold
// behaviour, nesting, and the end-to-end Wikidata diagnosis (the schema
// position the paper blames — entity ids as claim keys — must be flagged,
// and well-designed datasets must not be).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/generator.h"
#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "stats/key_analysis.h"
#include "types/type.h"

namespace jsonsi::stats {
namespace {

using types::FieldType;
using types::Type;
using types::TypeRef;

// A record with `n` fields keyed k0..k<n-1>, all optional, all of `type`.
TypeRef MapLike(size_t n, const TypeRef& type) {
  std::vector<FieldType> fields;
  for (size_t i = 0; i < n; ++i) {
    fields.push_back({"k" + std::to_string(i), type, /*optional=*/true});
  }
  return Type::RecordUnchecked(std::move(fields));
}

TEST(KeyAnalysisTest, FlagsUniformWideOptionalRecord) {
  TypeRef suspicious = MapLike(64, Type::Num());
  auto findings = DetectKeyAsData(suspicious);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "");
  EXPECT_EQ(findings[0].field_count, 64u);
  EXPECT_DOUBLE_EQ(findings[0].uniformity, 1.0);
  EXPECT_DOUBLE_EQ(findings[0].optional_fraction, 1.0);
  EXPECT_EQ(findings[0].dominant_kinds, "Num");
}

TEST(KeyAnalysisTest, SmallRecordsAreNotFlagged) {
  EXPECT_TRUE(DetectKeyAsData(MapLike(8, Type::Num())).empty());
}

TEST(KeyAnalysisTest, HeterogeneousWideRecordsAreNotFlagged) {
  // 64 fields but every other one has a different kind: a real struct.
  std::vector<FieldType> fields;
  for (size_t i = 0; i < 64; ++i) {
    TypeRef t = (i % 4 == 0)   ? Type::Num()
                : (i % 4 == 1) ? Type::Str()
                : (i % 4 == 2) ? Type::Bool()
                               : Type::Null();
    fields.push_back({"k" + std::to_string(i), t, true});
  }
  TypeRef record = Type::RecordUnchecked(std::move(fields));
  EXPECT_TRUE(DetectKeyAsData(record).empty());
}

TEST(KeyAnalysisTest, SimilarButNotIdenticalEntriesAreStillFlagged) {
  // The realistic map shape: every value is a record, but with varying
  // fields — kind signatures match even though types differ.
  std::vector<FieldType> fields;
  for (size_t i = 0; i < 40; ++i) {
    TypeRef entry = Type::RecordUnchecked(
        {{"v" + std::to_string(i % 5), Type::Num(), false}});
    fields.push_back({"k" + std::to_string(i), entry, true});
  }
  TypeRef record = Type::RecordUnchecked(std::move(fields));
  auto findings = DetectKeyAsData(record);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].dominant_kinds, "record");
}

TEST(KeyAnalysisTest, MostlyMandatoryRecordsAreNotFlagged) {
  std::vector<FieldType> fields;
  for (size_t i = 0; i < 64; ++i) {
    fields.push_back({"k" + std::to_string(i), Type::Num(),
                      /*optional=*/false});
  }
  TypeRef record = Type::RecordUnchecked(std::move(fields));
  EXPECT_TRUE(DetectKeyAsData(record).empty());
}

TEST(KeyAnalysisTest, ThresholdsAreConfigurable) {
  TypeRef record = MapLike(16, Type::Str());
  KeyAnalysisOptions opts;
  opts.min_fields = 10;
  EXPECT_EQ(DetectKeyAsData(record, opts).size(), 1u);
  opts.min_fields = 20;
  EXPECT_TRUE(DetectKeyAsData(record, opts).empty());
}

TEST(KeyAnalysisTest, NestedFindingsCarryPaths) {
  TypeRef nested = Type::RecordUnchecked(
      {{"meta", Type::RecordUnchecked(
                    {{"claims", MapLike(40, Type::Str()), false}}),
        false}});
  auto findings = DetectKeyAsData(nested);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "meta.claims");
}

TEST(KeyAnalysisTest, FindsThroughArraysAndUnions) {
  TypeRef in_array = Type::ArrayStar(MapLike(40, Type::Num()));
  auto findings = DetectKeyAsData(in_array);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "[]");

  TypeRef in_union = Type::Union({Type::Str(), MapLike(40, Type::Num())});
  EXPECT_EQ(DetectKeyAsData(in_union).size(), 1u);
}

TEST(KeyAnalysisTest, OrderedByFieldCount) {
  TypeRef two = Type::RecordUnchecked(
      {{"small", MapLike(40, Type::Num()), false},
       {"big", MapLike(80, Type::Str()), false}});
  auto findings = DetectKeyAsData(two);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].path, "big");
  EXPECT_EQ(findings[1].path, "small");
}

// ---- end-to-end on the synthetic datasets --------------------------------

TypeRef FusedSchemaOf(datagen::DatasetId id, uint64_t n) {
  auto gen = datagen::MakeGenerator(id, 21);
  fusion::TreeFuser fuser;
  for (uint64_t i = 0; i < n; ++i) {
    fuser.Add(inference::InferType(*gen->Generate(i)));
  }
  return fuser.Finish();
}

TEST(KeyAnalysisTest, DiagnosesWikidataClaims) {
  TypeRef schema = FusedSchemaOf(datagen::DatasetId::kWikidata, 3000);
  auto findings = DetectKeyAsData(schema);
  ASSERT_FALSE(findings.empty());
  // The paper's culprit: claims keyed by property ids (sitelinks, keyed by
  // wiki names, is legitimately flagged too).
  const KeyAsDataFinding* claims = nullptr;
  for (const auto& f : findings) {
    if (f.path == "claims") claims = &f;
  }
  ASSERT_NE(claims, nullptr);
  EXPECT_GT(claims->field_count, 150u);
  EXPECT_GT(claims->uniformity, 0.9);
}

TEST(KeyAnalysisTest, CleanDatasetsAreQuiet) {
  EXPECT_TRUE(
      DetectKeyAsData(FusedSchemaOf(datagen::DatasetId::kGitHub, 2000))
          .empty());
  EXPECT_TRUE(
      DetectKeyAsData(FusedSchemaOf(datagen::DatasetId::kNYTimes, 2000))
          .empty());
}

}  // namespace
}  // namespace jsonsi::stats
