// Differential tests for the src/io/ ingestion front-end: every input
// source and every PipelineReader arm must reproduce, byte for byte, the
// schemas, errors and IngestStats of the legacy whole-buffer slurp —
// across buffer sizes, thread counts, malformed-line policies, checkpoint
// kill/resume, and inputs larger than the buffer ring. Plus a bounded-RSS
// child-process test proving that --io stream infers a file bigger than
// its own heap budget.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/io_pump.h"
#include "core/schema_inferencer.h"
#include "core/streaming_inferencer.h"
#include "io/input_source.h"
#include "io/pipeline_reader.h"
#include "json/jsonl.h"

namespace jsonsi {
namespace {

using core::Schema;
using core::SchemaInferencer;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "jsonsi_io_pipeline_" + name;
}

void WriteFile(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  ASSERT_TRUE(out.good());
}

// Deterministic mixed corpus: records of varying shape, blank lines, and
// (optionally) malformed lines sprinkled at a fixed cadence.
std::string MakeCorpus(size_t lines, size_t malformed_every,
                       bool trailing_newline = true) {
  std::string text;
  uint64_t rng = 0x243f6a8885a308d3ull;  // fixed seed: corpus is part of
                                         // the test's identity
  for (size_t i = 0; i < lines; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    if (malformed_every && i % malformed_every == malformed_every - 1) {
      text += "{\"broken\": ";  // truncated document
    } else if (i % 17 == 3) {
      // blank line (counted, not a record)
    } else {
      switch ((rng >> 33) % 4) {
        case 0:
          text += "{\"id\": " + std::to_string(rng % 1000) +
                  ", \"name\": \"u" + std::to_string(i) + "\"}";
          break;
        case 1:
          text += "{\"id\": " + std::to_string(rng % 1000) +
                  ", \"tags\": [\"a\", \"b\"], \"ok\": true}";
          break;
        case 2:
          text += "{\"nested\": {\"x\": 1.5, \"y\": [" +
                  std::to_string(rng % 7) + "]}}";
          break;
        default:
          text += "{\"id\": null, \"note\": \"line " + std::to_string(i) +
                  "\"}";
          break;
      }
    }
    if (i + 1 < lines || trailing_newline) text += '\n';
  }
  return text;
}

void ExpectSameStats(const json::IngestStats& a, const json::IngestStats& b,
                     const std::string& label) {
  EXPECT_EQ(a.lines_read, b.lines_read) << label;
  EXPECT_EQ(a.blank_lines, b.blank_lines) << label;
  EXPECT_EQ(a.records, b.records) << label;
  EXPECT_EQ(a.malformed_lines, b.malformed_lines) << label;
  EXPECT_EQ(a.bytes_read, b.bytes_read) << label;
  EXPECT_EQ(a.bytes_consumed, b.bytes_consumed) << label;
  ASSERT_EQ(a.errors.size(), b.errors.size()) << label;
  for (size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_EQ(a.errors[i].line_number, b.errors[i].line_number) << label;
    EXPECT_EQ(a.errors[i].byte_offset, b.errors[i].byte_offset) << label;
    EXPECT_EQ(a.errors[i].message, b.errors[i].message) << label;
  }
}

// ---------------------------------------------------------------------------
// Input sources.

TEST(InputSourceTest, ParseIoModeRoundTrips) {
  io::IoMode mode;
  ASSERT_TRUE(io::ParseIoMode("auto", &mode));
  EXPECT_EQ(mode, io::IoMode::kAuto);
  ASSERT_TRUE(io::ParseIoMode("mmap", &mode));
  EXPECT_EQ(mode, io::IoMode::kMmap);
  ASSERT_TRUE(io::ParseIoMode("read", &mode));
  EXPECT_EQ(mode, io::IoMode::kRead);
  ASSERT_TRUE(io::ParseIoMode("stream", &mode));
  EXPECT_EQ(mode, io::IoMode::kStream);
  EXPECT_FALSE(io::ParseIoMode("pwrite", &mode));
  EXPECT_FALSE(io::ParseIoMode("", &mode));
}

TEST(InputSourceTest, MmapExposesWholeFile) {
  const std::string path = TempPath("mmap.jsonl");
  const std::string text = MakeCorpus(50, 0);
  WriteFile(path, text);
  auto mapped = io::MmapSource::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  ASSERT_TRUE(mapped.value()->Contents().has_value());
  EXPECT_EQ(*mapped.value()->Contents(), text);
  EXPECT_EQ(mapped.value()->SizeBytes(), text.size());
  ::unlink(path.c_str());
}

TEST(InputSourceTest, ReadSourceReadsAndSkips) {
  const std::string path = TempPath("read.jsonl");
  const std::string text = MakeCorpus(40, 0);
  WriteFile(path, text);
  auto file = io::ReadSource::Open(path);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_TRUE(file.value()->SkipTo(10).ok());
  std::string got;
  char buf[37];
  for (;;) {
    auto n = file.value()->Read(buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status();
    if (n.value() == 0) break;
    got.append(buf, n.value());
  }
  EXPECT_EQ(got, text.substr(10));
  ::unlink(path.c_str());
}

TEST(InputSourceTest, StreamSourceOnPipeSkipsByDiscarding) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string text = "abcdefghij0123456789";
  ASSERT_EQ(::write(fds[1], text.data(), text.size()),
            static_cast<ssize_t>(text.size()));
  ::close(fds[1]);
  io::StreamSource source("<pipe>", fds[0], /*close_fd=*/true);
  ASSERT_TRUE(source.SkipTo(10).ok());
  char buf[64];
  auto n = source.Read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(std::string(buf, n.value()), "0123456789");
  // Backwards seek on a consumed stream is refused, not silently wrong.
  EXPECT_FALSE(source.SkipTo(0).ok());
}

TEST(InputSourceTest, OpenErrors) {
  io::IoOptions options;
  options.mode = io::IoMode::kMmap;
  auto missing = io::OpenInputSource(TempPath("nope.jsonl"), options);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("cannot open file"),
            std::string::npos);
  auto stdin_mmap = io::OpenInputSource("-", options);
  ASSERT_FALSE(stdin_mmap.ok());
  EXPECT_EQ(stdin_mmap.status().code(), StatusCode::kInvalidArgument);
}

TEST(InputSourceTest, ReadFileToStringMatchesSlurp) {
  const std::string path = TempPath("slurp.jsonl");
  const std::string text = MakeCorpus(33, 0, /*trailing_newline=*/false);
  WriteFile(path, text);
  auto got = io::ReadFileToString(path);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value(), text);
  ::unlink(path.c_str());
  auto missing = io::ReadFileToString(TempPath("nope2.jsonl"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// PipelineReader framing: batches concatenate to the input and only ever
// split at newlines, for every buffer geometry on both arms.

void CheckFraming(std::string_view text, const io::IoOptions& options,
                  bool expose_contents, uint64_t start_offset = 0) {
  io::MemorySource source(text, expose_contents);
  io::PipelineReader reader(&source, options, start_offset);
  std::string joined;
  for (;;) {
    auto batch = reader.Next();
    ASSERT_TRUE(batch.ok()) << batch.status();
    if (batch.value().empty()) break;
    if (!joined.empty()) {
      // Every cut lands just after a newline.
      EXPECT_EQ(joined.back(), '\n');
    }
    joined += batch.value();
  }
  EXPECT_EQ(joined, text.substr(static_cast<size_t>(start_offset)));
  // The end marker persists: further calls keep reporting end of input.
  auto again = reader.Next();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().empty());
}

TEST(PipelineReaderTest, FramingAcrossGeometries) {
  const std::string text = MakeCorpus(400, 13);
  for (bool expose : {true, false}) {
    for (size_t buffer_bytes : {size_t{1}, size_t{7}, size_t{64},
                                size_t{4096}, size_t{1} << 20}) {
      for (size_t num_buffers : {size_t{2}, size_t{3}}) {
        for (bool overlap : {false, true}) {
          io::IoOptions options;
          options.buffer_bytes = buffer_bytes;
          options.num_buffers = num_buffers;
          options.overlap = overlap;
          SCOPED_TRACE("expose=" + std::to_string(expose) +
                       " buf=" + std::to_string(buffer_bytes) +
                       " ring=" + std::to_string(num_buffers) +
                       " overlap=" + std::to_string(overlap));
          CheckFraming(text, options, expose);
        }
      }
    }
  }
}

TEST(PipelineReaderTest, LineLongerThanBufferGrows) {
  std::string text = "{\"short\": 1}\n{\"long\": \"";
  text.append(5000, 'x');
  text += "\"}\n{\"short\": 2}\n";
  io::IoOptions options;
  options.buffer_bytes = 32;
  for (bool overlap : {false, true}) {
    options.overlap = overlap;
    CheckFraming(text, options, /*expose_contents=*/false);
  }
}

TEST(PipelineReaderTest, StartOffsetResumesMidInput) {
  const std::string text = MakeCorpus(120, 0);
  // Resume at a line boundary, the way a checkpoint's bytes_consumed does.
  size_t offset = text.find('\n', text.size() / 2) + 1;
  io::IoOptions options;
  options.buffer_bytes = 24;
  for (bool expose : {true, false}) {
    CheckFraming(text, options, expose, offset);
  }
}

TEST(PipelineReaderTest, EmptyAndNewlineFreeInputs) {
  io::IoOptions options;
  options.buffer_bytes = 8;
  CheckFraming("", options, true);
  CheckFraming("", options, false);
  CheckFraming("{\"one line, no newline\": 1}", options, true);
  CheckFraming("{\"one line, no newline\": 1}", options, false);
}

TEST(PipelineReaderTest, SlicedArmIsZeroCopy) {
  const std::string text = MakeCorpus(60, 0);
  io::MemorySource source(text);
  io::IoOptions options;
  options.buffer_bytes = 100;
  io::PipelineReader reader(&source, options);
  for (;;) {
    auto batch = reader.Next();
    ASSERT_TRUE(batch.ok());
    if (batch.value().empty()) break;
    // Each batch aliases the source buffer: no bytes were copied.
    EXPECT_GE(batch.value().data(), text.data());
    EXPECT_LE(batch.value().data() + batch.value().size(),
              text.data() + text.size());
  }
}

// ---------------------------------------------------------------------------
// Differential inference: every io mode, thread count and policy must match
// the one-shot in-memory pipeline exactly.

struct GridCase {
  io::IoMode mode;
  size_t buffer_bytes;
  size_t num_threads;
};

std::vector<GridCase> Grid() {
  return {
      {io::IoMode::kMmap, 1 << 20, 1},  {io::IoMode::kMmap, 1 << 20, 4},
      {io::IoMode::kRead, 64, 1},       {io::IoMode::kRead, 1 << 20, 4},
      {io::IoMode::kStream, 97, 1},     {io::IoMode::kStream, 1 << 20, 4},
      {io::IoMode::kAuto, 1 << 20, 2},
  };
}

void RunDifferential(const std::string& text, json::MalformedLinePolicy policy,
                     double max_error_rate = 0.01) {
  core::InferenceOptions base;
  base.ingest.on_malformed = policy;
  base.ingest.max_error_rate = max_error_rate;
  base.parallel_ingest_min_bytes = 0;  // force chunk-parallel on tiny inputs

  json::IngestStats want_stats;
  SchemaInferencer baseline(base);
  Result<Schema> want = baseline.InferFromJsonLines(text, &want_stats);

  const std::string path = TempPath("grid.jsonl");
  WriteFile(path, text);
  for (const GridCase& c : Grid()) {
    core::InferenceOptions options = base;
    options.num_threads = c.num_threads;
    options.io.mode = c.mode;
    options.io.buffer_bytes = c.buffer_bytes;
    const std::string label = std::string(io::IoModeName(c.mode)) + "/buf" +
                              std::to_string(c.buffer_bytes) + "/t" +
                              std::to_string(c.num_threads);
    SCOPED_TRACE(label);
    json::IngestStats got_stats;
    SchemaInferencer inferencer(options);
    Result<Schema> got = inferencer.InferFromFile(path, &got_stats);
    ASSERT_EQ(got.ok(), want.ok()) << label;
    if (!want.ok()) {
      // Policy aborts must carry the identical message (line numbers are
      // stream-global even when the input arrived in pipeline batches).
      EXPECT_EQ(got.status().message(), want.status().message()) << label;
    } else {
      EXPECT_TRUE(got.value().type->Equals(*want.value().type)) << label;
      EXPECT_EQ(got.value().stats.record_count, want.value().stats.record_count)
          << label;
    }
    ExpectSameStats(got_stats, want_stats, label);
  }
  ::unlink(path.c_str());
}

TEST(IoDifferentialTest, CleanInputStrictPolicy) {
  RunDifferential(MakeCorpus(600, 0), json::MalformedLinePolicy::kFail);
}

TEST(IoDifferentialTest, DirtyInputSkipPolicy) {
  RunDifferential(MakeCorpus(600, 11), json::MalformedLinePolicy::kSkip);
}

TEST(IoDifferentialTest, DirtyInputStrictAbortsIdentically) {
  RunDifferential(MakeCorpus(300, 37), json::MalformedLinePolicy::kFail);
}

TEST(IoDifferentialTest, RatePolicyWithinBudget) {
  // ~2.3% malformed under a 5% budget: every mode must tolerate it.
  RunDifferential(MakeCorpus(800, 43),
                  json::MalformedLinePolicy::kFailAboveRate, 0.05);
}

TEST(IoDifferentialTest, RatePolicyAbortsIdentically) {
  // ~12% malformed over a 5% budget: every mode must abort on the same
  // line with the same message.
  RunDifferential(MakeCorpus(800, 8),
                  json::MalformedLinePolicy::kFailAboveRate, 0.05);
}

TEST(IoDifferentialTest, SparseTailUnderMinLines) {
  // Fewer non-blank lines than min_lines_for_rate with one bad line: the
  // end-of-read validation must fire once, at the true end of the stream,
  // not per pipeline batch.
  RunDifferential(MakeCorpus(40, 19),
                  json::MalformedLinePolicy::kFailAboveRate, 0.001);
}

TEST(IoDifferentialTest, NoTrailingNewline) {
  RunDifferential(MakeCorpus(200, 0, /*trailing_newline=*/false),
                  json::MalformedLinePolicy::kFail);
}

TEST(IoDifferentialTest, BomHandling) {
  // Leading BOM is stripped once; a mid-file BOM belongs to its line. The
  // pipeline must not re-strip at batch seams.
  std::string text = "\xEF\xBB\xBF{\"a\": 1}\n{\"a\": 2}\n{\"a\": 3}\n";
  RunDifferential(text, json::MalformedLinePolicy::kSkip);
}

TEST(IoDifferentialTest, AnnotateFallsBackToBuffering) {
  const std::string text = MakeCorpus(150, 0);
  core::InferenceOptions options;
  options.annotate = true;
  SchemaInferencer baseline(options);
  Result<Schema> want = baseline.InferFromJsonLines(text);
  ASSERT_TRUE(want.ok()) << want.status();
  ASSERT_TRUE(want.value().annotation != nullptr);

  options.io.mode = io::IoMode::kRead;
  options.io.buffer_bytes = 128;
  const std::string path = TempPath("annotate.jsonl");
  WriteFile(path, text);
  SchemaInferencer inferencer(options);
  Result<Schema> got = inferencer.InferFromFile(path);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(got.value().annotation != nullptr);
  EXPECT_TRUE(got.value().type->Equals(*want.value().type));
  EXPECT_EQ(got.value().annotation->count, want.value().annotation->count);
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Pump parity: batched PumpJsonLines over the copying arm equals a single
// AddJsonLines of the whole text, success or abort.

TEST(IoPumpTest, BatchedPumpEqualsOneShot) {
  const std::string text = MakeCorpus(500, 9);
  core::StreamingOptions sopts;
  sopts.on_malformed = json::MalformedLinePolicy::kSkip;

  core::StreamingInferencer one_shot(sopts);
  ASSERT_TRUE(one_shot.AddJsonLines(text).ok());

  for (size_t buffer_bytes : {size_t{1}, size_t{50}, size_t{4096}}) {
    SCOPED_TRACE(buffer_bytes);
    core::StreamingInferencer pumped(sopts);
    io::MemorySource source(text, /*expose_contents=*/false);
    io::IoOptions options;
    options.buffer_bytes = buffer_bytes;
    io::PipelineReader reader(&source, options);
    ASSERT_TRUE(core::PumpJsonLines(reader, pumped, {}).ok());
    EXPECT_TRUE(pumped.Snapshot().type->Equals(*one_shot.Snapshot().type));
    ExpectSameStats(pumped.ingest_stats(), one_shot.ingest_stats(),
                    "buf" + std::to_string(buffer_bytes));
  }
}

TEST(IoPumpTest, AbortMessageMatchesOneShot) {
  const std::string text = MakeCorpus(400, 6);  // well over any rate budget
  core::StreamingOptions sopts;
  sopts.on_malformed = json::MalformedLinePolicy::kFailAboveRate;
  sopts.max_error_rate = 0.02;

  core::StreamingInferencer one_shot(sopts);
  Status want = one_shot.AddJsonLines(text);
  ASSERT_FALSE(want.ok());

  core::StreamingInferencer pumped(sopts);
  io::MemorySource source(text, /*expose_contents=*/false);
  io::IoOptions options;
  options.buffer_bytes = 64;
  io::PipelineReader reader(&source, options);
  Status got = core::PumpJsonLines(reader, pumped, {});
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.message(), want.message());
  ExpectSameStats(pumped.ingest_stats(), one_shot.ingest_stats(), "abort");
}

TEST(IoPumpTest, AfterBatchCanStopCleanly) {
  const std::string text = MakeCorpus(300, 0);
  core::StreamingInferencer stream;
  io::MemorySource source(text, /*expose_contents=*/false);
  io::IoOptions options;
  options.buffer_bytes = 64;
  io::PipelineReader reader(&source, options);
  core::PumpOptions pump;
  size_t batches = 0;
  pump.after_batch = [&]() -> Result<bool> { return ++batches < 2; };
  ASSERT_TRUE(core::PumpJsonLines(reader, stream, pump).ok());
  EXPECT_EQ(batches, 2u);
  EXPECT_LT(stream.ingest_stats().bytes_consumed, text.size());
}

// ---------------------------------------------------------------------------
// Checkpoint kill/resume through the pipeline: stopping after a batch,
// saving, and resuming a fresh inferencer at bytes_consumed reproduces the
// uninterrupted schema and stats exactly.

TEST(IoCheckpointTest, KillAndResumeMatchesUninterrupted) {
  const std::string text = MakeCorpus(600, 23);
  const std::string data_path = TempPath("ckpt.jsonl");
  const std::string ckpt_path = TempPath("ckpt.state");
  WriteFile(data_path, text);

  core::StreamingOptions sopts;
  sopts.on_malformed = json::MalformedLinePolicy::kSkip;
  core::StreamingInferencer uninterrupted(sopts);
  ASSERT_TRUE(uninterrupted.AddJsonLines(text).ok());

  for (io::IoMode mode : {io::IoMode::kMmap, io::IoMode::kRead,
                          io::IoMode::kStream}) {
    SCOPED_TRACE(io::IoModeName(mode));
    io::IoOptions options;
    options.mode = mode;
    options.buffer_bytes = 256;  // force many batches

    // Phase 1: ingest a few batches, then "die" right after a save.
    {
      core::StreamingInferencer stream(sopts);
      auto source = io::OpenInputSource(data_path, options);
      ASSERT_TRUE(source.ok()) << source.status();
      io::PipelineReader reader(source.value().get(), options);
      core::PumpOptions pump;
      size_t batches = 0;
      pump.after_batch = [&]() -> Result<bool> { return ++batches < 3; };
      ASSERT_TRUE(core::PumpJsonLines(reader, stream, pump).ok());
      ASSERT_LT(stream.ingest_stats().bytes_consumed, text.size());
      ASSERT_TRUE(core::SaveCheckpoint(stream, ckpt_path).ok());
    }

    // Phase 2: restore and finish from the checkpoint's byte offset.
    core::StreamingInferencer resumed(sopts);
    ASSERT_TRUE(core::LoadCheckpoint(ckpt_path, &resumed).ok());
    auto source = io::OpenInputSource(data_path, options);
    ASSERT_TRUE(source.ok()) << source.status();
    io::PipelineReader reader(source.value().get(), options,
                              resumed.ingest_stats().bytes_consumed);
    ASSERT_TRUE(core::PumpJsonLines(reader, resumed, {}).ok());

    EXPECT_TRUE(resumed.Snapshot().type->Equals(
        *uninterrupted.Snapshot().type));
    ExpectSameStats(resumed.ingest_stats(), uninterrupted.ingest_stats(),
                    io::IoModeName(mode));
    ::unlink(ckpt_path.c_str());
  }
  ::unlink(data_path.c_str());
}

// ---------------------------------------------------------------------------
// Bounded memory: a child process whose heap is capped far below the input
// size still infers it under --io stream. Skipped under sanitizers (their
// shadow mappings blow through any rlimit).

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define JSONSI_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define JSONSI_UNDER_SANITIZER 1
#endif
#endif

TEST(IoBoundedMemoryTest, StreamInfersFileLargerThanHeapBudget) {
#ifdef JSONSI_UNDER_SANITIZER
  GTEST_SKIP() << "rlimits are meaningless under sanitizer shadow mappings";
#else
  // 64 MB of JSONL vs a 32 MB heap cap: a slurp cannot even hold the text.
  const std::string path = TempPath("big.jsonl");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out);
    std::string block;
    for (int i = 0; i < 4096; ++i) {
      block += "{\"seq\": " + std::to_string(i) +
               ", \"payload\": \"0123456789abcdef0123456789abcdef\", "
               "\"flag\": " +
               (i % 2 ? "true" : "false") + "}\n";
    }
    size_t written = 0;
    while (written < (64ull << 20)) {
      out.write(block.data(), static_cast<std::streamsize>(block.size()));
      written += block.size();
    }
    ASSERT_TRUE(out.good());
  }

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: cap anonymous memory, then infer single-threaded with small
    // synchronous buffers (no helper threads — their stacks would count).
    struct rlimit cap;
    cap.rlim_cur = cap.rlim_max = 32ull << 20;
    if (::setrlimit(RLIMIT_DATA, &cap) != 0) ::_exit(10);
    core::InferenceOptions options;
    options.num_threads = 1;
    options.collect_stats = false;
    options.io.mode = io::IoMode::kStream;
    options.io.buffer_bytes = 1 << 20;
    options.io.overlap = false;
    SchemaInferencer inferencer(options);
    Result<Schema> schema = inferencer.InferFromFile(path);
    if (!schema.ok()) ::_exit(11);
    if (schema.value().stats.record_count < 100000) ::_exit(12);
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child crashed (signal "
                                 << WTERMSIG(status) << ")";
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "child exit " << WEXITSTATUS(status)
      << " (10=setrlimit, 11=infer failed, 12=short count)";
  ::unlink(path.c_str());
#endif
}

}  // namespace
}  // namespace jsonsi
