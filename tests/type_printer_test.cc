// Tests for the type printer and the type-expression parser, including
// print -> parse round trips.

#include <gtest/gtest.h>

#include "types/printer.h"
#include "types/type.h"
#include "types/type_parser.h"

namespace jsonsi::types {
namespace {

TypeRef MustParseType(std::string_view text) {
  Result<TypeRef> r = ParseType(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return r.ok() ? r.value() : Type::Empty();
}

// ---------------------------------------------------------------- printer --

TEST(PrinterTest, Basics) {
  EXPECT_EQ(ToString(*Type::Null()), "Null");
  EXPECT_EQ(ToString(*Type::Bool()), "Bool");
  EXPECT_EQ(ToString(*Type::Num()), "Num");
  EXPECT_EQ(ToString(*Type::Str()), "Str");
  EXPECT_EQ(ToString(*Type::Empty()), "Empty");
}

TEST(PrinterTest, RecordWithOptional) {
  TypeRef t = Type::RecordUnchecked(
      {{"a", Type::Num(), false}, {"b", Type::Str(), true}});
  EXPECT_EQ(ToString(*t), "{a: Num, b: Str?}");
}

TEST(PrinterTest, UnionFieldParenthesized) {
  TypeRef t = Type::RecordUnchecked(
      {{"m", Type::Union({Type::Str(), Type::Null()}), false}});
  EXPECT_EQ(ToString(*t), "{m: (Null + Str)}");
}

TEST(PrinterTest, QuotedKeysWhenNotIdentifiers) {
  TypeRef t = Type::RecordUnchecked({{"has space", Type::Num(), false}});
  EXPECT_EQ(ToString(*t), "{\"has space\": Num}");
}

TEST(PrinterTest, Arrays) {
  EXPECT_EQ(ToString(*Type::ArrayExact({})), "[]");
  EXPECT_EQ(ToString(*Type::ArrayExact({Type::Num(), Type::Str()})),
            "[Num, Str]");
  EXPECT_EQ(ToString(*Type::ArrayStar(Type::Num())), "[(Num)*]");
}

TEST(PrinterTest, StarOfUnionMatchesPaperNotation) {
  // The paper's (Str + {E: Str, F: Num})* example shape.
  TypeRef body = Type::Union(
      {Type::Str(), Type::RecordUnchecked({{"E", Type::Str(), false},
                                           {"F", Type::Num(), false}})});
  EXPECT_EQ(ToString(*Type::ArrayStar(body)),
            "[(Str + {E: Str, F: Num})*]");
}

TEST(PrinterTest, MultilineRecords) {
  PrintOptions opts;
  opts.multiline = true;
  TypeRef t = Type::RecordUnchecked(
      {{"a", Type::Num(), false}, {"b", Type::Str(), false}});
  std::string s = ToString(*t, opts);
  EXPECT_NE(s.find("\n  a: Num"), std::string::npos) << s;
}

// ----------------------------------------------------------------- parser --

TEST(TypeParserTest, Basics) {
  EXPECT_TRUE(MustParseType("Null")->is_basic());
  EXPECT_TRUE(MustParseType(" Empty ")->is_empty());
}

TEST(TypeParserTest, Unions) {
  TypeRef t = MustParseType("Num + Str + Bool");
  ASSERT_TRUE(t->is_union());
  EXPECT_EQ(t->alternatives().size(), 3u);
}

TEST(TypeParserTest, RecordsAndOptional) {
  TypeRef t = MustParseType("{a: Num, b: Str?, c: (Null + Bool)?}");
  ASSERT_TRUE(t->is_record());
  ASSERT_EQ(t->fields().size(), 3u);
  EXPECT_FALSE(t->FindField("a")->optional);
  EXPECT_TRUE(t->FindField("b")->optional);
  EXPECT_TRUE(t->FindField("c")->optional);
  EXPECT_TRUE(t->FindField("c")->type->is_union());
}

TEST(TypeParserTest, QuotedKeys) {
  TypeRef t = MustParseType("{\"weird key\": Num}");
  EXPECT_NE(t->FindField("weird key"), nullptr);
}

TEST(TypeParserTest, Arrays) {
  EXPECT_TRUE(MustParseType("[]")->is_array_exact());
  TypeRef exact = MustParseType("[Num, Str]");
  ASSERT_TRUE(exact->is_array_exact());
  EXPECT_EQ(exact->elements().size(), 2u);
  TypeRef star = MustParseType("[(Num + Str)*]");
  ASSERT_TRUE(star->is_array_star());
  EXPECT_TRUE(star->body()->is_union());
}

TEST(TypeParserTest, ParenthesizedElementIsNotAStar) {
  TypeRef t = MustParseType("[(Num)]");
  ASSERT_TRUE(t->is_array_exact());
  EXPECT_EQ(t->elements().size(), 1u);
}

TEST(TypeParserTest, DuplicateRecordKeysRejected) {
  EXPECT_FALSE(ParseType("{a: Num, a: Str}").ok());
}

TEST(TypeParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseType("").ok());
  EXPECT_FALSE(ParseType("Nul").ok());
  EXPECT_FALSE(ParseType("{a Num}").ok());
  EXPECT_FALSE(ParseType("{a: Num").ok());
  EXPECT_FALSE(ParseType("[Num,]").ok());
  EXPECT_FALSE(ParseType("Num +").ok());
  EXPECT_FALSE(ParseType("Num Str").ok());
  EXPECT_FALSE(ParseType("[(Num)*, Str]").ok());
}

// ------------------------------------------------------------ round trips --

TEST(TypeParserTest, RoundTripsCanonicalTypes) {
  std::vector<TypeRef> types = {
      Type::Null(),
      Type::Union({Type::Num(), Type::Bool()}),
      Type::RecordUnchecked(
          {{"a", Type::Union({Type::Str(), Type::Null()}), true},
           {"nested",
            Type::RecordUnchecked({{"x", Type::ArrayStar(Type::Num()), false}}),
            false}}),
      Type::ArrayExact({Type::Num(), Type::ArrayExact({})}),
      Type::ArrayStar(Type::Union(
          {Type::Str(),
           Type::RecordUnchecked({{"E", Type::Str(), false}})})),
      Type::ArrayStar(Type::Empty()),
  };
  for (const TypeRef& t : types) {
    std::string text = ToString(*t);
    TypeRef back = MustParseType(text);
    EXPECT_TRUE(t->Equals(*back)) << text << " -> " << ToString(*back);
  }
}

TEST(TypeParserTest, PaperExampleRoundTrip) {
  // T123 from Section 2: {A: (Str + Null)?, B: Num + Bool, (C: Str)?}
  TypeRef t = MustParseType(
      "{A: (Str + Null)?, B: (Num + Bool), C: Str?}");
  std::string text = ToString(*t);
  EXPECT_TRUE(t->Equals(*MustParseType(text))) << text;
}

}  // namespace
}  // namespace jsonsi::types
