// Unit tests for the type AST: canonical forms, kind(), size metric,
// equality/ordering, union normalization, normal-type invariant, Flatten.

#include <gtest/gtest.h>

#include "types/type.h"

namespace jsonsi::types {
namespace {

TEST(TypeTest, BasicSingletons) {
  EXPECT_EQ(Type::Null().get(), Type::Null().get());
  EXPECT_EQ(Type::Str().get(), Type::Str().get());
  EXPECT_TRUE(Type::Num()->is_basic());
  EXPECT_TRUE(Type::Empty()->is_empty());
}

TEST(TypeTest, KindsMatchPaperNumbering) {
  EXPECT_EQ(static_cast<int>(Type::Null()->kind()), 0);
  EXPECT_EQ(static_cast<int>(Type::Bool()->kind()), 1);
  EXPECT_EQ(static_cast<int>(Type::Num()->kind()), 2);
  EXPECT_EQ(static_cast<int>(Type::Str()->kind()), 3);
  EXPECT_EQ(static_cast<int>(Type::RecordUnchecked({})->kind()), 4);
  EXPECT_EQ(static_cast<int>(Type::ArrayExact({})->kind()), 5);
  // kind(AT) == kind(SAT) == 5.
  EXPECT_EQ(static_cast<int>(Type::ArrayStar(Type::Num())->kind()), 5);
}

TEST(TypeTest, BasicFactoryByKind) {
  EXPECT_TRUE(Type::Basic(Kind::kNull)->is_basic());
  EXPECT_EQ(Type::Basic(Kind::kStr).get(), Type::Str().get());
}

TEST(TypeTest, RecordFieldsKeySorted) {
  TypeRef t = Type::RecordUnchecked(
      {{"z", Type::Num(), false}, {"a", Type::Str(), true}});
  ASSERT_EQ(t->fields().size(), 2u);
  EXPECT_EQ(t->fields()[0].key, "a");
  EXPECT_TRUE(t->fields()[0].optional);
  EXPECT_EQ(t->fields()[1].key, "z");
}

TEST(TypeTest, CheckedRecordRejectsDuplicates) {
  Result<TypeRef> r = Type::Record(
      {{"k", Type::Num(), false}, {"k", Type::Str(), false}});
  EXPECT_FALSE(r.ok());
}

TEST(TypeTest, RecordEqualityIncludesOptionality) {
  TypeRef mandatory = Type::RecordUnchecked({{"k", Type::Num(), false}});
  TypeRef optional = Type::RecordUnchecked({{"k", Type::Num(), true}});
  EXPECT_FALSE(mandatory->Equals(*optional));
  EXPECT_NE(mandatory->hash(), optional->hash());
}

TEST(TypeTest, FindField) {
  TypeRef t = Type::RecordUnchecked(
      {{"a", Type::Num(), false}, {"b", Type::Str(), true}});
  ASSERT_NE(t->FindField("b"), nullptr);
  EXPECT_TRUE(t->FindField("b")->optional);
  EXPECT_EQ(t->FindField("c"), nullptr);
}

// ----------------------------------------------------------------- union --

TEST(TypeTest, UnionFlattensAndSorts) {
  TypeRef u1 = Type::Union({Type::Str(), Type::Num()});
  TypeRef u2 = Type::Union({Type::Num(), Type::Str()});
  EXPECT_TRUE(u1->Equals(*u2));  // canonical order
  ASSERT_TRUE(u1->is_union());
  EXPECT_EQ(u1->alternatives().size(), 2u);
  // Nested unions flatten.
  TypeRef nested = Type::Union({u1, Type::Bool()});
  ASSERT_TRUE(nested->is_union());
  EXPECT_EQ(nested->alternatives().size(), 3u);
  for (const TypeRef& alt : nested->alternatives()) {
    EXPECT_FALSE(alt->is_union());
  }
}

TEST(TypeTest, UnionDropsEmptyAndDegenerates) {
  EXPECT_TRUE(Type::Union({})->is_empty());
  EXPECT_EQ(Type::Union({Type::Num()}).get(), Type::Num().get());
  EXPECT_EQ(Type::Union({Type::Empty(), Type::Num()}).get(),
            Type::Num().get());
  EXPECT_TRUE(Type::Union({Type::Empty(), Type::Empty()})->is_empty());
}

TEST(TypeTest, UnionCollapsesExactDuplicates) {
  TypeRef u = Type::Union({Type::Num(), Type::Num(), Type::Str()});
  ASSERT_TRUE(u->is_union());
  EXPECT_EQ(u->alternatives().size(), 2u);
}

TEST(TypeTest, UnionKeepsDistinctSameKindAlternatives) {
  TypeRef r1 = Type::RecordUnchecked({{"a", Type::Num(), false}});
  TypeRef r2 = Type::RecordUnchecked({{"b", Type::Str(), false}});
  TypeRef u = Type::Union({r1, r2});
  ASSERT_TRUE(u->is_union());
  EXPECT_EQ(u->alternatives().size(), 2u);
  EXPECT_FALSE(IsNormal(u));  // two record-kind alternatives
}

// ------------------------------------------------------------------ size --

TEST(TypeTest, SizeOfBasics) {
  EXPECT_EQ(Type::Null()->size(), 1u);
  EXPECT_EQ(Type::Empty()->size(), 1u);
}

TEST(TypeTest, SizeOfRecord) {
  // record(1) + field a(1)+Num(1) + field b(1)+Str(1) = 5
  TypeRef t = Type::RecordUnchecked(
      {{"a", Type::Num(), false}, {"b", Type::Str(), true}});
  EXPECT_EQ(t->size(), 5u);
}

TEST(TypeTest, SizeOfArrays) {
  EXPECT_EQ(Type::ArrayExact({})->size(), 1u);
  EXPECT_EQ(Type::ArrayExact({Type::Num(), Type::Str()})->size(), 3u);
  EXPECT_EQ(Type::ArrayStar(Type::Num())->size(), 2u);
}

TEST(TypeTest, SizeOfUnion) {
  TypeRef u = Type::Union({Type::Num(), Type::Str()});
  EXPECT_EQ(u->size(), 3u);  // union node + 2 alternatives
}

TEST(TypeTest, OptionalityMarkerIsFreeInSize) {
  TypeRef mandatory = Type::RecordUnchecked({{"k", Type::Num(), false}});
  TypeRef optional = Type::RecordUnchecked({{"k", Type::Num(), true}});
  EXPECT_EQ(mandatory->size(), optional->size());
}

// ----------------------------------------------------------------- depth --

TEST(TypeTest, DepthCounting) {
  EXPECT_EQ(Type::Num()->Depth(), 1u);
  TypeRef nested = Type::RecordUnchecked(
      {{"a", Type::RecordUnchecked({{"b", Type::Num(), false}}), false}});
  EXPECT_EQ(nested->Depth(), 3u);
  // Union is transparent for depth.
  TypeRef u = Type::Union({Type::Num(), nested});
  EXPECT_EQ(u->Depth(), 3u);
}

// -------------------------------------------------------------- ordering --

TEST(TypeTest, CompareIsATotalOrder) {
  std::vector<TypeRef> ts = {
      Type::Null(),
      Type::Bool(),
      Type::Num(),
      Type::Str(),
      Type::RecordUnchecked({}),
      Type::RecordUnchecked({{"a", Type::Num(), false}}),
      Type::ArrayExact({}),
      Type::ArrayExact({Type::Num()}),
      Type::ArrayStar(Type::Num()),
      Type::Union({Type::Num(), Type::Str()}),
      Type::Empty(),
  };
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = 0; j < ts.size(); ++j) {
      int ij = Compare(*ts[i], *ts[j]);
      int ji = Compare(*ts[j], *ts[i]);
      EXPECT_EQ(ij == 0, ji == 0) << i << "," << j;
      EXPECT_EQ(ij < 0, ji > 0) << i << "," << j;
      if (i == j) {
        EXPECT_EQ(ij, 0);
      }
    }
  }
}

TEST(TypeTest, CompareDistinguishesOptionality) {
  TypeRef a = Type::RecordUnchecked({{"k", Type::Num(), false}});
  TypeRef b = Type::RecordUnchecked({{"k", Type::Num(), true}});
  EXPECT_NE(Compare(*a, *b), 0);
}

// -------------------------------------------------------------- IsNormal --

TEST(TypeTest, NormalExamples) {
  EXPECT_TRUE(IsNormal(Type::Num()));
  EXPECT_TRUE(IsNormal(Type::Union({Type::Num(), Type::Str()})));
  EXPECT_TRUE(IsNormal(Type::ArrayStar(Type::Empty())));  // [Empty*]
  TypeRef rec = Type::RecordUnchecked(
      {{"a", Type::Union({Type::Num(), Type::Null()}), true}});
  EXPECT_TRUE(IsNormal(rec));
}

TEST(TypeTest, NonNormalExamples) {
  // eps outside a star body.
  TypeRef bad_rec = Type::RecordUnchecked({{"a", Type::Empty(), false}});
  EXPECT_FALSE(IsNormal(bad_rec));
  // Two same-kind union members.
  TypeRef two_records = Type::Union(
      {Type::RecordUnchecked({{"a", Type::Num(), false}}),
       Type::RecordUnchecked({{"b", Type::Num(), false}})});
  EXPECT_FALSE(IsNormal(two_records));
  // Non-normality is detected below the top level.
  TypeRef nested = Type::RecordUnchecked({{"x", two_records, false}});
  EXPECT_FALSE(IsNormal(nested));
}

// --------------------------------------------------------------- Flatten --

TEST(TypeTest, FlattenMatchesPaperO) {
  EXPECT_TRUE(Flatten(Type::Empty()).empty());
  EXPECT_EQ(Flatten(Type::Num()).size(), 1u);
  TypeRef u = Type::Union({Type::Num(), Type::Str(), Type::Bool()});
  auto flat = Flatten(u);
  ASSERT_EQ(flat.size(), 3u);
  for (const TypeRef& t : flat) EXPECT_FALSE(t->is_union());
}

TEST(TypeTest, HashConsistencyOverEqualStructures) {
  auto make = [] {
    return Type::RecordUnchecked(
        {{"k", Type::Union({Type::Num(), Type::Str()}), true},
         {"arr", Type::ArrayStar(Type::Bool()), false}});
  };
  EXPECT_TRUE(make()->Equals(*make()));
  EXPECT_EQ(make()->hash(), make()->hash());
}

}  // namespace
}  // namespace jsonsi::types
