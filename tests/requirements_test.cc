// Tests for static query-requirement checking: each status, wildcard
// requirements, nested/array resolution, and an end-to-end "typecheck a
// query against an inferred firehose schema" scenario.

#include <gtest/gtest.h>

#include "core/schema_inferencer.h"
#include "datagen/generator.h"
#include "query/requirements.h"
#include "types/type_parser.h"

namespace jsonsi::query {
namespace {

types::TypeRef T(std::string_view text) {
  auto r = types::ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

RequirementResult CheckOne(std::string_view schema, FieldRequirement req) {
  auto results = CheckRequirements(T(schema), {std::move(req)});
  EXPECT_EQ(results.size(), 1u);
  return results.front();
}

TEST(RequirementsTest, OkWhenTypesMatch) {
  auto r = CheckOne("{id: Num, name: Str}", {"id", T("Num"), false});
  EXPECT_EQ(r.status, RequirementStatus::kOk);
  EXPECT_EQ(r.matched_paths, std::vector<std::string>{"id"});
}

TEST(RequirementsTest, SubtypingIsEnough) {
  // Query tolerates Num + Str; schema guarantees Num: fine.
  auto r = CheckOne("{id: Num}", {"id", T("Num + Str"), false});
  EXPECT_EQ(r.status, RequirementStatus::kOk);
}

TEST(RequirementsTest, MissingPathIsDeadSelection) {
  auto r = CheckOne("{id: Num}", {"idd", T("Num"), false});
  EXPECT_EQ(r.status, RequirementStatus::kMissing);
  EXPECT_TRUE(r.matched_paths.empty());
  EXPECT_NE(r.detail.find("never produce data"), std::string::npos);
}

TEST(RequirementsTest, TypeMismatchIsDetected) {
  auto r = CheckOne("{id: (Num + Str)}", {"id", T("Num"), false});
  EXPECT_EQ(r.status, RequirementStatus::kTypeMismatch);
  EXPECT_NE(r.detail.find("schema has Num + Str"), std::string::npos)
      << r.detail;
}

TEST(RequirementsTest, PresenceOnlyRequirementIgnoresType) {
  auto r = CheckOne("{id: (Num + Str)}", {"id", nullptr, false});
  EXPECT_EQ(r.status, RequirementStatus::kOk);
}

TEST(RequirementsTest, OptionalStepFlaggedWhenMandatoryRequired) {
  auto r = CheckOne("{meta: {ts: Num}?}", {"meta.ts", T("Num"), true});
  EXPECT_EQ(r.status, RequirementStatus::kMayBeAbsent);
  // Without the mandatory demand it is fine.
  auto relaxed = CheckOne("{meta: {ts: Num}?}", {"meta.ts", T("Num"), false});
  EXPECT_EQ(relaxed.status, RequirementStatus::kOk);
}

TEST(RequirementsTest, ArrayStepsCountAsOptional) {
  auto r = CheckOne("{xs: [(Num)*]}", {"xs[]", T("Num"), true});
  EXPECT_EQ(r.status, RequirementStatus::kMayBeAbsent);
  auto relaxed = CheckOne("{xs: [(Num)*]}", {"xs[]", T("Num"), false});
  EXPECT_EQ(relaxed.status, RequirementStatus::kOk);
}

TEST(RequirementsTest, ExactArrayElementsAreUnioned) {
  auto ok = CheckOne("{pair: [Num, Str]}", {"pair[]", T("Num + Str"), false});
  EXPECT_EQ(ok.status, RequirementStatus::kOk);
  auto bad = CheckOne("{pair: [Num, Str]}", {"pair[]", T("Num"), false});
  EXPECT_EQ(bad.status, RequirementStatus::kTypeMismatch);
}

TEST(RequirementsTest, WildcardRequirementChecksEveryMatch) {
  // *.id: user.id is Num (ok), meta.id is Str (mismatch vs Num).
  auto r = CheckOne("{user: {id: Num}, meta: {id: Str}}",
                    {"*.id", T("Num"), false});
  EXPECT_EQ(r.status, RequirementStatus::kTypeMismatch);
  EXPECT_EQ(r.matched_paths.size(), 2u);
  EXPECT_NE(r.detail.find("meta.id"), std::string::npos);
}

TEST(RequirementsTest, UnionSchemaPositionsResolve) {
  // The record branch of a union position is traversable.
  auto r = CheckOne("{p: (Str + {inner: Num})}", {"p.inner", T("Num"), false});
  EXPECT_EQ(r.status, RequirementStatus::kOk);
}

TEST(RequirementsTest, DeepNesting) {
  auto r = CheckOne("{a: {b: {c: [({d: (Num + Null)})*]}}}",
                    {"a.b.c[].d", T("Num + Null"), false});
  EXPECT_EQ(r.status, RequirementStatus::kOk);
}

TEST(RequirementsTest, MultipleRequirementsKeepOrder) {
  auto results = CheckRequirements(
      T("{id: Num, tags: [(Str)*]}"),
      {{"id", T("Num"), false},
       {"missing", nullptr, false},
       {"tags[]", T("Str"), false}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status, RequirementStatus::kOk);
  EXPECT_EQ(results[1].status, RequirementStatus::kMissing);
  EXPECT_EQ(results[2].status, RequirementStatus::kOk);
}

TEST(RequirementsTest, StatusNames) {
  EXPECT_STREQ(RequirementStatusName(RequirementStatus::kOk), "ok");
  EXPECT_STREQ(RequirementStatusName(RequirementStatus::kMissing), "missing");
  EXPECT_STREQ(RequirementStatusName(RequirementStatus::kTypeMismatch),
               "type-mismatch");
  EXPECT_STREQ(RequirementStatusName(RequirementStatus::kMayBeAbsent),
               "may-be-absent");
}

TEST(RequirementsTest, EndToEndTwitterQueryTypecheck) {
  // "SELECT text, user.screen_name, entities.hashtags[].text WHERE id = ?"
  // typechecked against the inferred firehose schema, plus two buggy
  // selections the analysis must catch.
  auto values = datagen::MakeGenerator(datagen::DatasetId::kTwitter, 23)
                    ->GenerateMany(2000);
  core::Schema schema = core::SchemaInferencer().InferFromValues(values);
  auto results = CheckRequirements(
      schema.type,
      {
          {"text", T("Str"), false},
          {"user.screen_name", T("Str"), false},
          {"entities.hashtags[].text", T("Str"), false},
          // Mixed stream: `text` is NOT mandatory (delete records lack it).
          {"text", T("Str"), true},
          // Typo'd field: dead selection.
          {"user.screenname", T("Str"), false},
          // Wrong type expectation.
          {"user.followers_count", T("Str"), false},
      });
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].status, RequirementStatus::kOk);
  EXPECT_EQ(results[1].status, RequirementStatus::kOk);
  EXPECT_EQ(results[2].status, RequirementStatus::kOk);
  EXPECT_EQ(results[3].status, RequirementStatus::kMayBeAbsent);
  EXPECT_EQ(results[4].status, RequirementStatus::kMissing);
  EXPECT_EQ(results[5].status, RequirementStatus::kTypeMismatch);
}

}  // namespace
}  // namespace jsonsi::query
