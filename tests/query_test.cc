// Tests for schema-based path-pattern expansion: matcher semantics,
// expansion against fused schemas, static emptiness detection, and the
// completeness contrast with skeleton schemas.

#include <gtest/gtest.h>

#include "baseline/skeleton.h"
#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "query/path_expansion.h"
#include "types/type_parser.h"

namespace jsonsi::query {
namespace {

types::TypeRef T(std::string_view text) {
  auto r = types::ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

// -------------------------------------------------------------- matcher --

TEST(PathMatcherTest, LiteralSegments) {
  EXPECT_TRUE(PathMatchesPattern("a.b.c", "a.b.c"));
  EXPECT_FALSE(PathMatchesPattern("a.b.c", "a.b"));
  EXPECT_FALSE(PathMatchesPattern("a.b", "a.b.c"));
  EXPECT_FALSE(PathMatchesPattern("a.x.c", "a.b.c"));
}

TEST(PathMatcherTest, SingleStarMatchesExactlyOneSegment) {
  EXPECT_TRUE(PathMatchesPattern("a.b.c", "a.*.c"));
  EXPECT_TRUE(PathMatchesPattern("a.b", "*.b"));
  EXPECT_FALSE(PathMatchesPattern("a.b.c.d", "a.*.d"));
  EXPECT_FALSE(PathMatchesPattern("a", "a.*"));
}

TEST(PathMatcherTest, DoubleStarMatchesAnyDepth) {
  EXPECT_TRUE(PathMatchesPattern("a.b.c", "**.c"));
  EXPECT_TRUE(PathMatchesPattern("c", "**.c"));
  EXPECT_TRUE(PathMatchesPattern("a.b.c", "a.**"));
  EXPECT_TRUE(PathMatchesPattern("a", "a.**"));  // ** may match zero
  EXPECT_TRUE(PathMatchesPattern("a.x.y.z.c", "a.**.c"));
  EXPECT_FALSE(PathMatchesPattern("a.x.y", "a.**.c"));
}

TEST(PathMatcherTest, ArraySegmentsAreLiterals) {
  EXPECT_TRUE(PathMatchesPattern("tags[].id", "tags[].id"));
  EXPECT_TRUE(PathMatchesPattern("tags[].id", "*.id"));
  EXPECT_FALSE(PathMatchesPattern("tags[].id", "tags.id"));
}

TEST(PathMatcherTest, InvalidPatterns) {
  EXPECT_FALSE(PathMatchesPattern("a", ""));
  EXPECT_FALSE(PathMatchesPattern("a.b", "a..b"));
  EXPECT_FALSE(PathMatchesPattern("abc", "a*c"));  // infix '*' unsupported
  EXPECT_FALSE(PathMatchesPattern("a", "***"));
}

TEST(PathMatcherTest, BacktrackingCases) {
  EXPECT_TRUE(PathMatchesPattern("a.b.a.b.c", "**.a.b.c"));
  EXPECT_TRUE(PathMatchesPattern("a.c.c", "a.**.c"));
  EXPECT_TRUE(PathMatchesPattern("x.a.y.a.z", "**.a.*"));
}

// ------------------------------------------------------------ expansion --

TEST(ExpandTest, ExpandsWildcardsAgainstSchema) {
  types::TypeRef schema = T(
      "{user: {id: Num, name: Str}, meta: {id: Str, tags: [(Str)*]}}");
  EXPECT_EQ(ExpandPathPattern(*schema, "*.id"),
            (std::vector<std::string>{"meta.id", "user.id"}));
  EXPECT_EQ(ExpandPathPattern(*schema, "**.id"),
            (std::vector<std::string>{"meta.id", "user.id"}));
  EXPECT_EQ(ExpandPathPattern(*schema, "user.**"),
            (std::vector<std::string>{"user", "user.id", "user.name"}));
}

TEST(ExpandTest, ArrayPaths) {
  types::TypeRef schema = T("{posts: [({title: Str, tags: [(Str)*]})*]}");
  // "tags[]" (the element step) is itself a one-segment path component,
  // so the single star sees three children under posts[].
  EXPECT_EQ(ExpandPathPattern(*schema, "posts[].*"),
            (std::vector<std::string>{"posts[].tags", "posts[].tags[]",
                                      "posts[].title"}));
  EXPECT_EQ(ExpandPathPattern(*schema, "**.tags[]"),
            (std::vector<std::string>{"posts[].tags[]"}));
}

TEST(ExpandTest, EmptyExpansionProvesDeadQuery) {
  types::TypeRef schema = T("{a: {b: Num}}");
  EXPECT_TRUE(ExpandPathPattern(*schema, "a.c").empty());
  EXPECT_TRUE(ExpandPathPattern(*schema, "**.missing").empty());
}

TEST(ExpandTest, UnionBranchesAreVisible) {
  // Paths behind union alternatives must expand (a skeleton or coerced
  // schema would hide them).
  types::TypeRef schema = T("{p: (Str + {inner: Num})}");
  EXPECT_EQ(ExpandPathPattern(*schema, "p.*"),
            (std::vector<std::string>{"p.inner"}));
}

TEST(ExpandTest, EndToEndCompletenessVsSkeleton) {
  // A rare path expands against the complete fused schema but not against
  // the frequency skeleton: the exact failure mode Section 1 ascribes to
  // skeleton repositories.
  std::vector<json::ValueRef> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(json::Parse(R"({"common": 1})").value());
  }
  values.push_back(
      json::Parse(R"({"common": 1, "rare": {"deep": true}})").value());
  fusion::TreeFuser fuser;
  for (const auto& v : values) fuser.Add(inference::InferType(*v));
  types::TypeRef complete = fuser.Finish();
  types::TypeRef skeleton = baseline::BuildSkeleton(
      values, complete, baseline::SkeletonOptions{0.01});

  EXPECT_EQ(ExpandPathPattern(*complete, "**.deep").size(), 1u);
  EXPECT_TRUE(ExpandPathPattern(*skeleton, "**.deep").empty());
}

}  // namespace
}  // namespace jsonsi::query
