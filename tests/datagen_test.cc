// Tests for the dataset generators: determinism, well-formedness, and the
// structural profiles each dataset must exhibit (Section 6.1), since the
// experiment tables depend on those profiles.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

#include "datagen/generator.h"
#include "fusion/fuse.h"
#include "inference/infer.h"
#include "json/serializer.h"
#include "stats/type_stats.h"
#include "types/membership.h"

namespace jsonsi::datagen {
namespace {

// Record-nesting depth, the paper's notion of "nesting level": arrays and
// scalar leaves are transparent, each record adds one level.
size_t RecordDepth(const json::Value& v) {
  switch (v.kind()) {
    case json::ValueKind::kRecord: {
      size_t d = 0;
      for (const auto& f : v.fields()) d = std::max(d, RecordDepth(*f.value));
      return 1 + d;
    }
    case json::ValueKind::kArray: {
      size_t d = 0;
      for (const auto& e : v.elements()) d = std::max(d, RecordDepth(*e));
      return d;
    }
    default:
      return 0;
  }
}

bool ContainsArray(const json::Value& v) {
  if (v.is_array()) return true;
  if (v.is_record()) {
    for (const auto& f : v.fields()) {
      if (ContainsArray(*f.value)) return true;
    }
  }
  return false;
}

class GeneratorSuite : public ::testing::TestWithParam<DatasetId> {};

TEST_P(GeneratorSuite, DeterministicPerSeedAndIndex) {
  auto g1 = MakeGenerator(GetParam(), 7);
  auto g2 = MakeGenerator(GetParam(), 7);
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(g1->Generate(i)->Equals(*g2->Generate(i))) << i;
  }
}

TEST_P(GeneratorSuite, DifferentSeedsProduceDifferentStreams) {
  auto g1 = MakeGenerator(GetParam(), 1);
  auto g2 = MakeGenerator(GetParam(), 2);
  int identical = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    identical += g1->Generate(i)->Equals(*g2->Generate(i));
  }
  EXPECT_LT(identical, 3);
}

TEST_P(GeneratorSuite, RandomAccessMatchesSequential) {
  auto g = MakeGenerator(GetParam(), 7);
  auto batch = g->GenerateMany(10, 5);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(batch[i]->Equals(*g->Generate(5 + i)));
  }
}

TEST_P(GeneratorSuite, RecordsSerializeAndAreTopLevelRecords) {
  auto g = MakeGenerator(GetParam(), 3);
  for (uint64_t i = 0; i < 25; ++i) {
    json::ValueRef v = g->Generate(i);
    EXPECT_TRUE(v->is_record());
    EXPECT_FALSE(json::ToJson(*v).empty());
  }
}

TEST_P(GeneratorSuite, InferredTypesMatchValues) {
  auto g = MakeGenerator(GetParam(), 3);
  for (uint64_t i = 0; i < 10; ++i) {
    json::ValueRef v = g->Generate(i);
    EXPECT_TRUE(types::Matches(*v, *inference::InferType(*v)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, GeneratorSuite,
    ::testing::Values(DatasetId::kGitHub, DatasetId::kTwitter,
                      DatasetId::kWikidata, DatasetId::kNYTimes),
    [](const ::testing::TestParamInfo<DatasetId>& info) {
      return DatasetName(info.param);
    });

// ------------------------------------------------- per-dataset profiles --

TEST(GitHubProfile, NoArraysAndDepthAtMostFour) {
  auto g = MakeGenerator(DatasetId::kGitHub, 11);
  for (uint64_t i = 0; i < 200; ++i) {
    json::ValueRef v = g->Generate(i);
    EXPECT_FALSE(ContainsArray(*v)) << i;
    // "nesting depth never greater than four" (Section 6.1).
    EXPECT_LE(RecordDepth(*v), 4u) << i;
  }
}

TEST(GitHubProfile, HomogeneousTypesWithConstantSize) {
  // Table 2: min = max = avg inferred-type size; few distinct types.
  auto g = MakeGenerator(DatasetId::kGitHub, 11);
  stats::DistinctTypeSet distinct;
  std::set<size_t> sizes;
  for (uint64_t i = 0; i < 1000; ++i) {
    types::TypeRef t = inference::InferType(*g->Generate(i));
    distinct.Add(t);
    sizes.insert(t->size());
  }
  EXPECT_EQ(sizes.size(), 1u) << "type size must be constant";
  EXPECT_GE(distinct.size(), 5u);
  EXPECT_LE(distinct.size(), 120u);  // paper: 29 @ 1K — same order
}

TEST(TwitterProfile, MixesTweetsAndDeletes) {
  auto g = MakeGenerator(DatasetId::kTwitter, 13);
  size_t deletes = 0, tweets = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    json::ValueRef v = g->Generate(i);
    if (v->Find("delete")) {
      ++deletes;
    } else {
      ASSERT_NE(v->Find("text"), nullptr);
      ++tweets;
    }
  }
  EXPECT_GT(deletes, 0u);
  EXPECT_GT(tweets, deletes * 10);  // deletes are a tiny fraction
}

TEST(TwitterProfile, UsesArraysOfRecordsBoundedDepth) {
  auto g = MakeGenerator(DatasetId::kTwitter, 13);
  bool saw_array_of_records = false;
  for (uint64_t i = 0; i < 100; ++i) {
    json::ValueRef v = g->Generate(i);
    // "the maximum level of nesting is 3" (Section 6.1).
    EXPECT_LE(RecordDepth(*v), 3u);
    if (const json::Value* e = v->Find("entities")) {
      const json::Value* tags = e->Find("hashtags");
      if (tags && !tags->elements().empty()) {
        saw_array_of_records = tags->elements()[0]->is_record();
      }
    }
  }
  EXPECT_TRUE(saw_array_of_records);
}

TEST(TwitterProfile, SeveralTopLevelVariants) {
  auto g = MakeGenerator(DatasetId::kTwitter, 17);
  std::set<std::string> top_level_shapes;
  for (uint64_t i = 0; i < 300; ++i) {
    json::ValueRef v = g->Generate(i);
    std::string shape;
    for (const auto& f : v->fields()) shape += f.key + ",";
    top_level_shapes.insert(shape);
  }
  EXPECT_EQ(top_level_shapes.size(), 5u);  // the paper's five schemas
}

TEST(WikidataProfile, KeysAsDataMakeNearlyEveryTypeDistinct) {
  // Table 4: 999 distinct types among 1,000 records.
  auto g = MakeGenerator(DatasetId::kWikidata, 19);
  stats::DistinctTypeSet distinct;
  for (uint64_t i = 0; i < 1000; ++i) {
    distinct.Add(inference::InferType(*g->Generate(i)));
  }
  EXPECT_GE(distinct.size(), 950u);
}

TEST(WikidataProfile, NestingReachesLevelSix) {
  // "several records reach a nesting level of 6" (Section 6.1):
  // root > claims > statement > mainsnak > datavalue > value.
  auto g = MakeGenerator(DatasetId::kWikidata, 19);
  size_t max_depth = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    max_depth = std::max(max_depth, RecordDepth(*g->Generate(i)));
  }
  EXPECT_EQ(max_depth, 6u);
}

TEST(WikidataProfile, ClaimKeysAreSkewedPropertyIds) {
  auto g = MakeGenerator(DatasetId::kWikidata, 23);
  std::map<std::string, int> key_freq;
  for (uint64_t i = 0; i < 300; ++i) {
    json::ValueRef v = g->Generate(i);
    const json::Value* claims = v->Find("claims");
    ASSERT_NE(claims, nullptr);
    for (const auto& f : claims->fields()) {
      EXPECT_EQ(f.key[0], 'P');
      ++key_freq[f.key];
    }
  }
  // Zipf skew: the most frequent property is much more common than median.
  int max_freq = 0;
  for (const auto& [k, n] : key_freq) max_freq = std::max(max_freq, n);
  EXPECT_GT(max_freq, 30);
  EXPECT_GT(key_freq.size(), 100u);
}

TEST(NYTimesProfile, NestingReachesLevelSevenAndTopLevelIsStable) {
  auto g = MakeGenerator(DatasetId::kNYTimes, 29);
  std::set<std::string> top_level_shapes;
  size_t max_depth = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    json::ValueRef v = g->Generate(i);
    max_depth = std::max(max_depth, RecordDepth(*v));
    std::string shape;
    for (const auto& f : v->fields()) shape += f.key + ",";
    top_level_shapes.insert(shape);
  }
  // "records ... are nested up to 7 levels" (Section 6.1):
  // root > legacy > meta > source > feed > origin > ids.
  EXPECT_EQ(max_depth, 7u);
  EXPECT_EQ(top_level_shapes.size(), 1u);  // first level fixed
}

TEST(NYTimesProfile, HeadlineHasAlternativeSubfieldSets) {
  auto g = MakeGenerator(DatasetId::kNYTimes, 29);
  std::set<std::string> headline_shapes;
  for (uint64_t i = 0; i < 200; ++i) {
    json::ValueRef v = g->Generate(i);
    const json::Value* h = v->Find("headline");
    ASSERT_NE(h, nullptr);
    std::string shape;
    for (const auto& f : h->fields()) shape += f.key + ",";
    headline_shapes.insert(shape);
  }
  EXPECT_GE(headline_shapes.size(), 2u);
  EXPECT_LE(headline_shapes.size(), 3u);
}

TEST(NYTimesProfile, SameFieldMixesNumAndStr) {
  auto g = MakeGenerator(DatasetId::kNYTimes, 31);
  bool saw_num = false, saw_str = false;
  for (uint64_t i = 0; i < 100; ++i) {
    json::ValueRef v = g->Generate(i);
    const json::Value* wc = v->Find("word_count");
    ASSERT_NE(wc, nullptr);
    saw_num |= wc->is_num();
    saw_str |= wc->is_str();
  }
  EXPECT_TRUE(saw_num);
  EXPECT_TRUE(saw_str);
}

TEST(NYTimesProfile, FusionCompactsDespiteManyDistinctTypes) {
  // Table 5's shape: many distinct inferred types, small fused type.
  auto g = MakeGenerator(DatasetId::kNYTimes, 37);
  stats::DistinctTypeSet distinct;
  types::TypeRef fused = types::Type::Empty();
  double total_size = 0;
  const uint64_t n = 500;
  for (uint64_t i = 0; i < n; ++i) {
    types::TypeRef t = inference::InferType(*g->Generate(i));
    distinct.Add(t);
    total_size += static_cast<double>(t->size());
    fused = fusion::Fuse(fused, t);
  }
  double avg = total_size / n;
  EXPECT_GT(distinct.size(), n / 4);           // many distinct types
  EXPECT_LT(static_cast<double>(fused->size()), avg * 4.0);  // compact
}

}  // namespace
}  // namespace jsonsi::datagen
