// Tests for the push-based StreamingInferencer: snapshot exactness vs the
// batch pipeline, mid-stream snapshots, shard merging, malformed handling,
// and the optional profiler.

#include <gtest/gtest.h>

#include "core/streaming_inferencer.h"
#include "datagen/generator.h"
#include "json/serializer.h"
#include "random_value_gen.h"
#include "types/type_parser.h"

namespace jsonsi::core {
namespace {

types::TypeRef T(std::string_view text) {
  auto r = types::ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

TEST(StreamingTest, EmptySnapshot) {
  StreamingInferencer streaming;
  Schema snapshot = streaming.Snapshot();
  EXPECT_TRUE(snapshot.type->is_empty());
  EXPECT_EQ(snapshot.stats.record_count, 0u);
}

TEST(StreamingTest, SnapshotEqualsBatchPipeline) {
  auto values = jsonsi::testing::RandomValues(11, 150);
  StreamingInferencer streaming;
  for (const auto& v : values) streaming.AddValue(v);
  Schema stream_schema = streaming.Snapshot();
  Schema batch_schema = SchemaInferencer().InferFromValues(values);
  EXPECT_TRUE(stream_schema.type->Equals(*batch_schema.type));
  EXPECT_EQ(stream_schema.stats.record_count,
            batch_schema.stats.record_count);
  EXPECT_EQ(stream_schema.stats.distinct_type_count,
            batch_schema.stats.distinct_type_count);
  EXPECT_EQ(stream_schema.stats.min_type_size,
            batch_schema.stats.min_type_size);
  EXPECT_EQ(stream_schema.stats.max_type_size,
            batch_schema.stats.max_type_size);
  EXPECT_NEAR(stream_schema.stats.avg_type_size,
              batch_schema.stats.avg_type_size, 1e-9);
}

TEST(StreamingTest, SnapshotsDoNotDisturbIngestion) {
  auto values = jsonsi::testing::RandomValues(13, 60);
  StreamingInferencer streaming;
  StreamingInferencer uninterrupted;
  for (size_t i = 0; i < values.size(); ++i) {
    streaming.AddValue(values[i]);
    uninterrupted.AddValue(values[i]);
    if (i % 7 == 0) (void)streaming.Snapshot();  // snapshot mid-stream
  }
  EXPECT_TRUE(
      streaming.Snapshot().type->Equals(*uninterrupted.Snapshot().type));
}

TEST(StreamingTest, AddJsonAndJsonLines) {
  StreamingInferencer streaming;
  ASSERT_TRUE(streaming.AddJson(R"({"a": 1})").ok());
  ASSERT_TRUE(streaming.AddJsonLines("{\"a\": \"s\"}\n\n{\"b\": true}\n").ok());
  EXPECT_EQ(streaming.record_count(), 3u);
  EXPECT_TRUE(streaming.Snapshot().type->Equals(
      *T("{a: (Num + Str)?, b: Bool?}")));
}

TEST(StreamingTest, MalformedFailsByDefault) {
  StreamingInferencer streaming;
  EXPECT_FALSE(streaming.AddJson("{oops").ok());
  EXPECT_FALSE(streaming.AddJsonLines("{\"a\":1}\nbad\n").ok());
}

TEST(StreamingTest, SkipMalformedCountsAndContinues) {
  StreamingOptions opts;
  opts.skip_malformed = true;
  StreamingInferencer streaming(opts);
  ASSERT_TRUE(streaming.AddJsonLines("{\"a\":1}\nbad line\n{\"a\":2}\n").ok());
  EXPECT_EQ(streaming.record_count(), 2u);
  EXPECT_EQ(streaming.malformed_count(), 1u);
  EXPECT_TRUE(streaming.Snapshot().type->Equals(*T("{a: Num}")));
}

TEST(StreamingTest, ExplicitPolicyAndCumulativeIngestStats) {
  StreamingOptions opts;
  opts.on_malformed = json::MalformedLinePolicy::kSkip;
  StreamingInferencer streaming(opts);
  // Stats accumulate coherently across documents and chunked line feeds.
  ASSERT_TRUE(streaming.AddJson("{\"a\":1}").ok());
  ASSERT_TRUE(streaming.AddJson("{nope").ok());  // skipped, not fatal
  ASSERT_TRUE(streaming.AddJsonLines("bad\n{\"a\":2}\n").ok());
  ASSERT_TRUE(streaming.AddJsonLines("{\"a\":3}\n").ok());
  const auto& stats = streaming.ingest_stats();
  EXPECT_EQ(stats.lines_read, 5u);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.malformed_lines, 2u);
  ASSERT_EQ(stats.errors.size(), 2u);
  EXPECT_EQ(stats.errors[0].line_number, 2u);  // the bad document
  EXPECT_EQ(stats.errors[1].line_number, 3u);  // "bad" in the first chunk
  EXPECT_EQ(streaming.record_count(), 3u);
}

TEST(StreamingTest, FailAboveRatePolicyAbortsOnGarbageStream) {
  StreamingOptions opts;
  opts.on_malformed = json::MalformedLinePolicy::kFailAboveRate;
  opts.max_error_rate = 0.10;
  opts.min_lines_for_rate = 4;
  StreamingInferencer streaming(opts);
  Status st = streaming.AddJsonLines("{\"a\":1}\nbad\n{\"a\":2}\nworse\n");
  EXPECT_FALSE(st.ok());
  EXPECT_GT(streaming.malformed_count(), 0u);
  // The report still covers the aborted chunk.
  EXPECT_GE(streaming.ingest_stats().lines_read, 2u);
}

TEST(StreamingTest, FailAboveRatePolicyIsCumulativeAcrossChunks) {
  StreamingOptions opts;
  opts.on_malformed = json::MalformedLinePolicy::kFailAboveRate;
  opts.max_error_rate = 0.10;
  opts.min_lines_for_rate = 4;
  StreamingInferencer streaming(opts);
  // 40 clean lines first: the stream is established as healthy.
  std::string clean;
  for (int i = 0; i < 40; ++i) clean += "{\"a\":" + std::to_string(i) + "}\n";
  ASSERT_TRUE(streaming.AddJsonLines(clean).ok());
  // A tiny late chunk that is 50% garbage locally but leaves the cumulative
  // rate at 1/42 ~ 2.4% — well under the 10% tolerance. Per-chunk rate
  // accounting would abort here; cumulative accounting must not.
  EXPECT_TRUE(streaming.AddJsonLines("bad\n{\"a\":40}\n").ok());
  EXPECT_EQ(streaming.record_count(), 41u);
  EXPECT_EQ(streaming.malformed_count(), 1u);

  // The policy still trips once the *cumulative* rate is exceeded, even when
  // the garbage arrives spread over many small chunks.
  Status st = Status::OK();
  for (int i = 0; i < 10 && st.ok(); ++i) {
    st = streaming.AddJsonLines("nope\n");
  }
  EXPECT_FALSE(st.ok());
  EXPECT_GT(streaming.malformed_count(), 1u);
}

TEST(StreamingTest, MinLinesForRateCountsAcrossChunks) {
  StreamingOptions opts;
  opts.on_malformed = json::MalformedLinePolicy::kFailAboveRate;
  opts.max_error_rate = 0.10;
  opts.min_lines_for_rate = 100;
  StreamingInferencer streaming(opts);
  // 95 clean lines, then an all-garbage chunk of 20. The second chunk alone
  // never reaches min_lines_for_rate (20 < 100), but the cumulative stream
  // crosses 100 non-blank lines five garbage lines in, so the mid-line rate
  // check engages and aborts before the whole chunk is consumed — chunk-local
  // accounting would only notice at end of chunk, after swallowing all 20.
  std::string clean;
  for (int i = 0; i < 95; ++i) clean += "{\"a\":" + std::to_string(i) + "}\n";
  ASSERT_TRUE(streaming.AddJsonLines(clean).ok());
  std::string garbage;
  for (int i = 0; i < 20; ++i) garbage += "not json\n";
  EXPECT_FALSE(streaming.AddJsonLines(garbage).ok());
  EXPECT_LT(streaming.malformed_count(), 20u);
  EXPECT_EQ(streaming.record_count(), 95u);
}

TEST(StreamingTest, MergeConcatenatesIngestReports) {
  StreamingOptions opts;
  opts.on_malformed = json::MalformedLinePolicy::kSkip;
  StreamingInferencer a(opts), b(opts);
  ASSERT_TRUE(a.AddJsonLines("{\"x\":1}\n{\"x\":2}\n").ok());
  ASSERT_TRUE(b.AddJsonLines("junk\n{\"x\":3}\n").ok());
  a.Merge(b);
  EXPECT_EQ(a.record_count(), 3u);
  EXPECT_EQ(a.malformed_count(), 1u);
  ASSERT_EQ(a.ingest_stats().errors.size(), 1u);
  // b's line 1 lands after a's two lines in the concatenated report.
  EXPECT_EQ(a.ingest_stats().errors[0].line_number, 3u);
}

TEST(StreamingTest, ShardMergeEqualsSingleStream) {
  auto values = jsonsi::testing::RandomValues(17, 90);
  StreamingInferencer whole;
  for (const auto& v : values) whole.AddValue(v);

  StreamingInferencer shard_a, shard_b, shard_c;
  for (size_t i = 0; i < 30; ++i) shard_a.AddValue(values[i]);
  for (size_t i = 30; i < 60; ++i) shard_b.AddValue(values[i]);
  for (size_t i = 60; i < 90; ++i) shard_c.AddValue(values[i]);
  shard_a.Merge(shard_b);
  shard_a.Merge(shard_c);

  Schema merged = shard_a.Snapshot();
  Schema single = whole.Snapshot();
  EXPECT_TRUE(merged.type->Equals(*single.type));
  EXPECT_EQ(merged.stats.record_count, single.stats.record_count);
  EXPECT_EQ(merged.stats.distinct_type_count,
            single.stats.distinct_type_count);
  EXPECT_EQ(merged.stats.min_type_size, single.stats.min_type_size);
  EXPECT_EQ(merged.stats.max_type_size, single.stats.max_type_size);
  EXPECT_NEAR(merged.stats.avg_type_size, single.stats.avg_type_size, 1e-9);
}

TEST(StreamingTest, MergeIntoEmpty) {
  StreamingInferencer empty;
  StreamingInferencer full;
  full.AddValue(jsonsi::testing::RandomValue(3));
  empty.Merge(full);
  EXPECT_EQ(empty.record_count(), 1u);
  EXPECT_TRUE(empty.Snapshot().type->Equals(*full.Snapshot().type));
}

TEST(StreamingTest, IngestionContinuesAfterMerge) {
  StreamingInferencer a, b;
  ASSERT_TRUE(a.AddJson(R"({"x": 1})").ok());
  ASSERT_TRUE(b.AddJson(R"({"y": "s"})").ok());
  a.Merge(b);
  ASSERT_TRUE(a.AddJson(R"({"z": true})").ok());
  EXPECT_TRUE(a.Snapshot().type->Equals(*T("{x: Num?, y: Str?, z: Bool?}")));
}

TEST(StreamingTest, ProfilerOptional) {
  StreamingInferencer plain;
  EXPECT_EQ(plain.profiler(), nullptr);

  StreamingOptions opts;
  opts.profile = true;
  StreamingInferencer profiled(opts);
  ASSERT_TRUE(profiled.AddJson(R"({"a": 1})").ok());
  ASSERT_TRUE(profiled.AddJson(R"({"a": "s", "b": null})").ok());
  ASSERT_NE(profiled.profiler(), nullptr);
  EXPECT_EQ(profiled.profiler()->record_count(), 2u);
  // The profile projection agrees with the snapshot schema (both streams of
  // the same records; snapshot may keep exact arrays, none here).
  EXPECT_TRUE(
      profiled.profiler()->ToType()->Equals(*profiled.Snapshot().type));
}

TEST(StreamingTest, DistinctCountingCanBeDisabled) {
  StreamingOptions opts;
  opts.count_distinct_types = false;
  StreamingInferencer streaming(opts);
  ASSERT_TRUE(streaming.AddJson(R"({"a": 1})").ok());
  EXPECT_EQ(streaming.Snapshot().stats.distinct_type_count, 0u);
}

TEST(StreamingTest, MemoryWatermarkDegradesWithoutChangingSchema) {
  auto gen = datagen::MakeGenerator(datagen::DatasetId::kGitHub, 21);
  std::string jsonl;
  for (uint64_t i = 0; i < 800; ++i) {
    jsonl += json::ToJson(gen->Generate(i));
    jsonl += '\n';
  }

  StreamingInferencer unlimited;
  ASSERT_TRUE(unlimited.AddJsonLines(jsonl).ok());
  EXPECT_FALSE(unlimited.memory_degraded());

  StreamingOptions tight;
  tight.soft_memory_limit_bytes = 1;  // force shedding immediately
  StreamingInferencer degraded(tight);
  ASSERT_TRUE(degraded.AddJsonLines(jsonl).ok());
  EXPECT_TRUE(degraded.memory_degraded());

  // Shedding touches only auxiliary structures: the inferred schema and the
  // record count are untouched; the distinct count becomes a lower bound.
  Schema full = unlimited.Snapshot();
  Schema shed = degraded.Snapshot();
  EXPECT_TRUE(shed.type->Equals(*full.type));
  EXPECT_EQ(shed.stats.record_count, full.stats.record_count);
  EXPECT_LE(shed.stats.distinct_type_count, full.stats.distinct_type_count);

  // The parallel path degrades and converges to the same schema too.
  StreamingInferencer parallel_degraded(tight);
  ASSERT_TRUE(parallel_degraded.AddJsonLinesParallel(jsonl, 4).ok());
  EXPECT_TRUE(parallel_degraded.memory_degraded());
  EXPECT_TRUE(parallel_degraded.Snapshot().type->Equals(*full.type));
}

TEST(StreamingTest, BytesConsumedTracksIngestion) {
  StreamingInferencer streaming;
  const std::string jsonl = "{\"a\":1}\n{\"a\":2}\n";
  ASSERT_TRUE(streaming.AddJsonLines(jsonl).ok());
  EXPECT_EQ(streaming.ingest_stats().bytes_consumed, jsonl.size());
  EXPECT_EQ(streaming.ingest_stats().bytes_read, jsonl.size());
}

TEST(StreamingTest, MidStreamBomMatchesOneShotHoweverBatched) {
  // A UTF-8 BOM is tolerated on the stream's first line only. A batched
  // feed must agree: the first line of a follow-up batch is an interior
  // line, so its BOM makes it malformed exactly as in a one-shot read.
  const std::string batch1 = "\xEF\xBB\xBF{\"a\":1}\n{\"a\":2}\n";
  const std::string batch2 = "\xEF\xBB\xBF{\"a\":3}\n{\"a\":4}\n";
  StreamingOptions opts;
  opts.on_malformed = json::MalformedLinePolicy::kSkip;

  StreamingInferencer one_shot(opts);
  ASSERT_TRUE(one_shot.AddJsonLines(batch1 + batch2).ok());
  EXPECT_EQ(one_shot.record_count(), 3u);  // line 1's BOM stripped, line 3's
  EXPECT_EQ(one_shot.malformed_count(), 1u);  // not

  StreamingInferencer batched(opts);
  ASSERT_TRUE(batched.AddJsonLines(batch1).ok());
  ASSERT_TRUE(batched.AddJsonLines(batch2).ok());
  EXPECT_EQ(batched.record_count(), one_shot.record_count());
  EXPECT_EQ(batched.malformed_count(), one_shot.malformed_count());
  EXPECT_TRUE(batched.Snapshot().type->Equals(*one_shot.Snapshot().type));

  StreamingInferencer parallel(opts);
  ASSERT_TRUE(parallel.AddJsonLines(batch1).ok());
  ASSERT_TRUE(parallel.AddJsonLinesParallel(batch2, 4).ok());
  EXPECT_EQ(parallel.record_count(), one_shot.record_count());
  EXPECT_EQ(parallel.malformed_count(), one_shot.malformed_count());
  EXPECT_TRUE(parallel.Snapshot().type->Equals(*one_shot.Snapshot().type));
}

TEST(StreamingTest, WorksAtDatasetScale) {
  auto gen = datagen::MakeGenerator(datagen::DatasetId::kTwitter, 9);
  StreamingInferencer streaming;
  for (uint64_t i = 0; i < 2000; ++i) streaming.AddValue(gen->Generate(i));
  Schema snapshot = streaming.Snapshot();
  EXPECT_EQ(snapshot.stats.record_count, 2000u);
  EXPECT_GT(snapshot.stats.distinct_type_count, 100u);
  EXPECT_TRUE(snapshot.type->is_record());
}

}  // namespace
}  // namespace jsonsi::core
