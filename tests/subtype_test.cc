// Tests for the structural subtype checker: rule-level cases plus the
// whole-schema statement of Theorem 5.2 (T <: Fuse(T, U)) and the
// membership-consistency property (soundness witnessed on sampled values).

#include <gtest/gtest.h>

#include "fusion/fuse.h"
#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "random_value_gen.h"
#include "types/membership.h"
#include "types/printer.h"
#include "types/subtype.h"
#include "types/type_parser.h"

namespace jsonsi::types {
namespace {

bool Sub(std::string_view a, std::string_view b) {
  auto ta = ParseType(a);
  auto tb = ParseType(b);
  EXPECT_TRUE(ta.ok()) << a << ": " << ta.status();
  EXPECT_TRUE(tb.ok()) << b << ": " << tb.status();
  return IsSubtypeOf(*ta.value(), *tb.value());
}

TEST(SubtypeTest, Reflexive) {
  for (const char* t :
       {"Null", "Num", "{a: Num, b: Str?}", "[Num, Str]", "[(Num + Str)*]",
        "Num + {a: Bool}", "Empty"}) {
    EXPECT_TRUE(Sub(t, t)) << t;
  }
}

TEST(SubtypeTest, EmptyIsBottom) {
  EXPECT_TRUE(Sub("Empty", "Num"));
  EXPECT_TRUE(Sub("Empty", "{a: Str}"));
  EXPECT_FALSE(Sub("Num", "Empty"));
}

TEST(SubtypeTest, BasicsAreDisjoint) {
  EXPECT_FALSE(Sub("Num", "Str"));
  EXPECT_FALSE(Sub("Null", "Bool"));
  EXPECT_FALSE(Sub("Num", "{a: Num}"));
}

TEST(SubtypeTest, UnionsOnRight) {
  EXPECT_TRUE(Sub("Num", "Num + Str"));
  EXPECT_TRUE(Sub("Str", "Num + Str"));
  EXPECT_FALSE(Sub("Bool", "Num + Str"));
}

TEST(SubtypeTest, UnionsOnLeft) {
  EXPECT_TRUE(Sub("Num + Str", "Num + Str + Bool"));
  EXPECT_FALSE(Sub("Num + Bool", "Num + Str"));
}

TEST(SubtypeTest, RecordWidthAndOptionality) {
  // Mandatory may weaken to optional...
  EXPECT_TRUE(Sub("{a: Num}", "{a: Num?}"));
  // ...but optional may not strengthen to mandatory.
  EXPECT_FALSE(Sub("{a: Num?}", "{a: Num}"));
  // Right-only fields must be optional (closed records).
  EXPECT_TRUE(Sub("{a: Num}", "{a: Num, b: Str?}"));
  EXPECT_FALSE(Sub("{a: Num}", "{a: Num, b: Str}"));
  // Left-only fields break inclusion (right cannot admit the key).
  EXPECT_FALSE(Sub("{a: Num, extra: Str}", "{a: Num}"));
  EXPECT_FALSE(Sub("{a: Num, extra: Str?}", "{a: Num}"));
}

TEST(SubtypeTest, RecordDepth) {
  EXPECT_TRUE(Sub("{a: {b: Num}}", "{a: {b: Num + Str}}"));
  EXPECT_FALSE(Sub("{a: {b: Num + Str}}", "{a: {b: Num}}"));
}

TEST(SubtypeTest, ExactArrays) {
  EXPECT_TRUE(Sub("[Num, Str]", "[Num + Bool, Str]"));
  EXPECT_FALSE(Sub("[Num, Str]", "[Str, Num]"));
  EXPECT_FALSE(Sub("[Num]", "[Num, Num]"));
}

TEST(SubtypeTest, ExactIntoStar) {
  EXPECT_TRUE(Sub("[Num, Num]", "[(Num)*]"));
  EXPECT_TRUE(Sub("[Num, Str]", "[(Num + Str)*]"));
  EXPECT_FALSE(Sub("[Num, Bool]", "[(Num + Str)*]"));
  EXPECT_TRUE(Sub("[]", "[(Num)*]"));  // the empty array is in every [T*]
}

TEST(SubtypeTest, StarIntoStar) {
  EXPECT_TRUE(Sub("[(Num)*]", "[(Num + Str)*]"));
  EXPECT_FALSE(Sub("[(Num + Str)*]", "[(Num)*]"));
  EXPECT_TRUE(Sub("[(Empty)*]", "[(Num)*]"));
}

TEST(SubtypeTest, StarIntoExactOnlyWhenBothEmpty) {
  EXPECT_TRUE(Sub("[(Empty)*]", "[]"));
  EXPECT_TRUE(Sub("[]", "[(Empty)*]"));
  EXPECT_FALSE(Sub("[(Num)*]", "[]"));
  EXPECT_FALSE(Sub("[(Num)*]", "[Num]"));  // star admits any length
}

TEST(SubtypeTest, PaperSectionTwoChain) {
  // T1, T2 <: T12 and T12, T3 <: T123 from the Section 2 walkthrough.
  const char* t12 = "{A: Str?, B: (Num + Bool), C: Str?}";
  EXPECT_TRUE(Sub("{A: Str, B: Num}", t12));
  EXPECT_TRUE(Sub("{B: Bool, C: Str}", t12));
  const char* t123 = "{A: (Str + Null)?, B: (Num + Bool), C: Str?}";
  EXPECT_TRUE(Sub(t12, t123));
  EXPECT_TRUE(Sub("{A: Null, B: Num}", t123));
}

// ---- Theorem 5.2 as a whole-schema property ------------------------------

class SubtypeProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubtypeProperties, FuseIsAnUpperBound) {
  auto values = jsonsi::testing::RandomValues(GetParam(), 24);
  std::vector<TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  // Pairwise: both inputs are subtypes of the fusion (Theorem 5.2).
  for (size_t i = 0; i + 1 < ts.size(); i += 2) {
    TypeRef fused = fusion::Fuse(ts[i], ts[i + 1]);
    ASSERT_TRUE(IsSubtypeOf(*ts[i], *fused))
        << ToString(*ts[i]) << "  !<:  " << ToString(*fused);
    ASSERT_TRUE(IsSubtypeOf(*ts[i + 1], *fused));
  }
  // Iterated: every input is a subtype of the global schema.
  fusion::TreeFuser fuser;
  for (const auto& t : ts) fuser.Add(t);
  TypeRef global = fuser.Finish();
  for (const auto& t : ts) {
    ASSERT_TRUE(IsSubtypeOf(*t, *global))
        << ToString(*t) << "  !<:  " << ToString(*global);
  }
}

TEST_P(SubtypeProperties, FusionChainIsMonotone) {
  // Each prefix schema is a subtype of every longer prefix schema.
  auto values = jsonsi::testing::RandomValues(GetParam() + 500, 12);
  TypeRef acc = Type::Empty();
  std::vector<TypeRef> prefixes;
  for (const auto& v : values) {
    acc = fusion::Fuse(acc, inference::InferType(*v));
    prefixes.push_back(acc);
  }
  for (size_t i = 0; i < prefixes.size(); ++i) {
    for (size_t j = i; j < prefixes.size(); ++j) {
      ASSERT_TRUE(IsSubtypeOf(*prefixes[i], *prefixes[j])) << i << "," << j;
    }
  }
}

TEST_P(SubtypeProperties, SoundnessOnSampledValues) {
  // Whenever the checker says T <: U, every sampled member of T must be a
  // member of U.
  auto values = jsonsi::testing::RandomValues(GetParam() + 900, 20);
  std::vector<TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = 0; j < ts.size(); ++j) {
      if (IsSubtypeOf(*ts[i], *ts[j])) {
        ASSERT_TRUE(Matches(*values[i], *ts[j]))
            << ToString(*ts[i]) << " <: " << ToString(*ts[j])
            << " but its witness value does not match";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubtypeProperties,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace jsonsi::types
