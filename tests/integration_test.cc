// Cross-module integration tests: the whole system exercised end to end on
// the four dataset generators, checking the inter-module contracts that the
// unit suites cannot see — printer/parser round trips of pipeline schemas,
// subtype monotonicity across growing prefixes, export/membership agreement
// at dataset scale, streaming vs batch vs repository consistency, and
// determinism across runs.

#include <gtest/gtest.h>

#include "core/schema_inferencer.h"
#include "core/streaming_inferencer.h"
#include "datagen/generator.h"
#include "export/json_schema.h"
#include "export/validator.h"
#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "json/jsonl.h"
#include "json/parser.h"
#include "json/serializer.h"
#include "repository/schema_repository.h"
#include "types/membership.h"
#include "types/printer.h"
#include "types/subtype.h"
#include "types/type_parser.h"

namespace jsonsi {
namespace {

class PipelineIntegration
    : public ::testing::TestWithParam<datagen::DatasetId> {
 protected:
  std::vector<json::ValueRef> Values(uint64_t n, uint64_t seed = 99) {
    return datagen::MakeGenerator(GetParam(), seed)->GenerateMany(n);
  }
};

TEST_P(PipelineIntegration, SchemaPrintsAndParsesBack) {
  auto values = Values(400);
  core::Schema schema = core::SchemaInferencer().InferFromValues(values);
  std::string text = schema.ToString();
  auto parsed = types::ParseType(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  EXPECT_TRUE(parsed.value()->Equals(*schema.type));
  // Pretty form round-trips too.
  auto pretty = types::ParseType(schema.ToString(/*pretty=*/true));
  ASSERT_TRUE(pretty.ok());
  EXPECT_TRUE(pretty.value()->Equals(*schema.type));
}

TEST_P(PipelineIntegration, TextRoundTripPreservesSchema) {
  // values -> JSON-Lines text -> parse -> infer == infer directly.
  auto values = Values(200);
  std::string text = json::ToJsonLines(values);
  core::SchemaInferencer inferencer;
  auto from_text = inferencer.InferFromJsonLines(text);
  ASSERT_TRUE(from_text.ok()) << from_text.status();
  core::Schema direct = inferencer.InferFromValues(values);
  EXPECT_TRUE(from_text.value().type->Equals(*direct.type));
}

TEST_P(PipelineIntegration, PrefixSchemasAreMonotone) {
  auto values = Values(300);
  core::SchemaInferencer inferencer;
  std::vector<json::ValueRef> prefix;
  types::TypeRef previous = types::Type::Empty();
  for (size_t n : {50u, 100u, 200u, 300u}) {
    prefix.assign(values.begin(), values.begin() + n);
    types::TypeRef schema = inferencer.InferFromValues(prefix).type;
    EXPECT_TRUE(types::IsSubtypeOf(*previous, *schema)) << n;
    previous = schema;
  }
}

TEST_P(PipelineIntegration, ExportAgreesWithMembershipAtScale) {
  auto values = Values(250);
  core::Schema schema = core::SchemaInferencer().InferFromValues(values);
  json::ValueRef exported = exporter::ToJsonSchema(schema.type);
  for (const auto& v : values) {
    ASSERT_TRUE(types::Matches(*v, *schema.type));
    ASSERT_TRUE(exporter::Validates(*v, *exported));
  }
  // A record from a DIFFERENT dataset must fail both the same way.
  auto foreign = datagen::MakeGenerator(
                     GetParam() == datagen::DatasetId::kGitHub
                         ? datagen::DatasetId::kTwitter
                         : datagen::DatasetId::kGitHub,
                     7)
                     ->Generate(0);
  EXPECT_EQ(types::Matches(*foreign, *schema.type),
            exporter::Validates(*foreign, *exported));
}

TEST_P(PipelineIntegration, StreamingBatchRepositoryAgree) {
  auto values = Values(300);
  core::Schema batch = core::SchemaInferencer().InferFromValues(values);

  core::StreamingInferencer streaming;
  for (const auto& v : values) streaming.AddValue(v);
  EXPECT_TRUE(streaming.Snapshot().type->Equals(*batch.type));

  repository::SchemaRepository repo;
  core::SchemaInferencer inferencer;
  for (size_t start = 0; start < values.size(); start += 100) {
    std::vector<json::ValueRef> chunk(values.begin() + start,
                                      values.begin() + start + 100);
    ASSERT_TRUE(repo.RegisterBatch("src",
                                   inferencer.InferFromValues(chunk).type, 100)
                    .ok());
  }
  EXPECT_TRUE(repo.Current("src")->schema->Equals(*batch.type));
  EXPECT_EQ(repo.Current("src")->cumulative_records, 300u);
}

TEST_P(PipelineIntegration, DeterministicAcrossRuns) {
  core::Schema a = core::SchemaInferencer().InferFromValues(Values(150));
  core::Schema b = core::SchemaInferencer().InferFromValues(Values(150));
  EXPECT_TRUE(a.type->Equals(*b.type));
  EXPECT_EQ(a.stats.distinct_type_count, b.stats.distinct_type_count);
}

TEST_P(PipelineIntegration, SchemaIsNormalAndCompact) {
  auto values = Values(500);
  core::Schema schema = core::SchemaInferencer().InferFromValues(values);
  EXPECT_TRUE(types::IsNormal(*schema.type));
  // The core succinctness claim: fused size is a small multiple of the
  // average inferred size (<= 310x even for Wikidata's worst case; clean
  // datasets are < 5x).
  double ratio = static_cast<double>(schema.type->size()) /
                 schema.stats.avg_type_size;
  if (GetParam() == datagen::DatasetId::kWikidata) {
    EXPECT_LT(ratio, 400.0);
  } else {
    EXPECT_LT(ratio, 5.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, PipelineIntegration,
    ::testing::Values(datagen::DatasetId::kGitHub, datagen::DatasetId::kTwitter,
                      datagen::DatasetId::kWikidata,
                      datagen::DatasetId::kNYTimes),
    [](const ::testing::TestParamInfo<datagen::DatasetId>& info) {
      return datagen::DatasetName(info.param);
    });

// ---- non-parameterized end-to-end glue ------------------------------------

TEST(IntegrationTest, MixedDatasetsFuseIntoOneStream) {
  // Fusing schemas of different datasets models multi-source consumption;
  // everything still matches the union schema.
  std::vector<json::ValueRef> mixed;
  for (auto id : datagen::AllDatasets()) {
    auto batch = datagen::MakeGenerator(id, 5)->GenerateMany(50);
    mixed.insert(mixed.end(), batch.begin(), batch.end());
  }
  core::Schema schema = core::SchemaInferencer().InferFromValues(mixed);
  for (const auto& v : mixed) {
    ASSERT_TRUE(types::Matches(*v, *schema.type));
  }
  EXPECT_TRUE(types::IsNormal(*schema.type));
}

TEST(IntegrationTest, SerializeParseInferStableUnderReserialization) {
  // serializer -> parser is the identity on the value model, so running the
  // text round trip twice changes nothing.
  auto gen = datagen::MakeGenerator(datagen::DatasetId::kNYTimes, 3);
  for (uint64_t i = 0; i < 50; ++i) {
    json::ValueRef v = gen->Generate(i);
    auto once = json::Parse(json::ToJson(*v));
    ASSERT_TRUE(once.ok());
    auto twice = json::Parse(json::ToJson(*once.value()));
    ASSERT_TRUE(twice.ok());
    EXPECT_TRUE(v->Equals(*twice.value()));
    EXPECT_TRUE(inference::InferType(*v)->Equals(
        *inference::InferType(*twice.value())));
  }
}

}  // namespace
}  // namespace jsonsi
