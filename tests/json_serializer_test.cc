// Unit tests for serialization: compact output, pretty output, escaping,
// SerializedSize accounting, parser round trips over random values.

#include <gtest/gtest.h>

#include "json/parser.h"
#include "json/serializer.h"
#include "random_value_gen.h"

namespace jsonsi::json {
namespace {

TEST(SerializerTest, Scalars) {
  EXPECT_EQ(ToJson(*Value::Null()), "null");
  EXPECT_EQ(ToJson(*Value::Bool(true)), "true");
  EXPECT_EQ(ToJson(*Value::Bool(false)), "false");
  EXPECT_EQ(ToJson(*Value::Num(42)), "42");
  EXPECT_EQ(ToJson(*Value::Num(2.5)), "2.5");
  EXPECT_EQ(ToJson(*Value::Str("hi")), "\"hi\"");
}

TEST(SerializerTest, EscapesStrings) {
  EXPECT_EQ(ToJson(*Value::Str("a\"b\n")), R"("a\"b\n")");
}

TEST(SerializerTest, RecordCompact) {
  ValueRef v = Value::RecordUnchecked(
      {{"b", Value::Num(2)}, {"a", Value::Num(1)}});
  // Canonical key order (sorted).
  EXPECT_EQ(ToJson(*v), R"({"a":1,"b":2})");
}

TEST(SerializerTest, ArrayCompact) {
  ValueRef v = Value::Array({Value::Num(1), Value::Str("x"), Value::Null()});
  EXPECT_EQ(ToJson(*v), R"([1,"x",null])");
}

TEST(SerializerTest, EmptyContainers) {
  EXPECT_EQ(ToJson(*Value::RecordUnchecked({})), "{}");
  EXPECT_EQ(ToJson(*Value::Array({})), "[]");
}

TEST(SerializerTest, PrettyIsReparseable) {
  ValueRef v = Value::RecordUnchecked(
      {{"nested", Value::RecordUnchecked({{"x", Value::Num(1)}})},
       {"list", Value::Array({Value::Num(1), Value::Num(2)})}});
  std::string pretty = ToPrettyJson(*v);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  Result<ValueRef> back = Parse(pretty);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(v->Equals(*back.value()));
}

TEST(SerializerTest, SerializedSizeMatchesActualLength) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    ValueRef v = jsonsi::testing::RandomValue(seed);
    EXPECT_EQ(SerializedSize(*v), ToJson(*v).size()) << "seed=" << seed;
  }
}

TEST(SerializerTest, SerializedSizeWithEscapes) {
  ValueRef v = Value::Str("line\nbreak\x02");
  EXPECT_EQ(SerializedSize(*v), ToJson(*v).size());
}

TEST(SerializerTest, RandomValuesRoundTrip) {
  for (uint64_t seed = 100; seed < 200; ++seed) {
    ValueRef v = jsonsi::testing::RandomValue(seed);
    Result<ValueRef> back = Parse(ToJson(*v));
    ASSERT_TRUE(back.ok()) << "seed=" << seed << ": " << back.status();
    EXPECT_TRUE(v->Equals(*back.value())) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace jsonsi::json
