// Tests for the schema differ: every change kind, nesting, arrays, unions,
// determinism, and the no-change case.

#include <gtest/gtest.h>

#include "diff/schema_diff.h"
#include "fusion/fuse.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "types/type_parser.h"

namespace jsonsi::diff {
namespace {

types::TypeRef T(std::string_view text) {
  auto r = types::ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

std::vector<SchemaChange> Diff(std::string_view before,
                               std::string_view after) {
  return DiffSchemas(T(before), T(after));
}

bool Has(const std::vector<SchemaChange>& changes, std::string_view path,
         ChangeKind kind) {
  for (const SchemaChange& c : changes) {
    if (c.path == path && c.kind == kind) return true;
  }
  return false;
}

TEST(DiffTest, IdenticalSchemasYieldNoChanges) {
  EXPECT_TRUE(Diff("{a: Num, b: Str?}", "{a: Num, b: Str?}").empty());
  EXPECT_TRUE(Diff("[(Num + Str)*]", "[(Num + Str)*]").empty());
}

TEST(DiffTest, FieldAddedAndRemoved) {
  auto changes = Diff("{a: Num}", "{a: Num, b: Str?}");
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_TRUE(Has(changes, "b", ChangeKind::kFieldAdded));
  EXPECT_EQ(changes[0].detail, "Str?");

  changes = Diff("{a: Num, gone: Bool}", "{a: Num}");
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_TRUE(Has(changes, "gone", ChangeKind::kFieldRemoved));
}

TEST(DiffTest, OptionalityTransitions) {
  EXPECT_TRUE(Has(Diff("{a: Num}", "{a: Num?}"), "a",
                  ChangeKind::kBecameOptional));
  EXPECT_TRUE(Has(Diff("{a: Num?}", "{a: Num}"), "a",
                  ChangeKind::kBecameMandatory));
}

TEST(DiffTest, KindTransitions) {
  auto broadened = Diff("{a: Num}", "{a: (Num + Str)}");
  EXPECT_TRUE(Has(broadened, "a", ChangeKind::kKindsBroadened));
  EXPECT_EQ(broadened[0].detail, "Num -> Num + Str");
  EXPECT_TRUE(Has(Diff("{a: (Num + Str)}", "{a: Num}"), "a",
                  ChangeKind::kKindsNarrowed));
  // Simultaneous gain and loss reports both.
  auto both = Diff("{a: Num}", "{a: Str}");
  EXPECT_TRUE(Has(both, "a", ChangeKind::kKindsBroadened));
  EXPECT_TRUE(Has(both, "a", ChangeKind::kKindsNarrowed));
}

TEST(DiffTest, NestedPathsAreDotted) {
  auto changes = Diff("{user: {name: Str}}", "{user: {name: Str, age: Num?}}");
  EXPECT_TRUE(Has(changes, "user.age", ChangeKind::kFieldAdded));
}

TEST(DiffTest, AddedSubtreeIsFullyReported) {
  auto changes = Diff("{a: Num}", "{a: Num, sub: {x: Num, y: {z: Str}}?}");
  EXPECT_TRUE(Has(changes, "sub", ChangeKind::kFieldAdded));
  EXPECT_TRUE(Has(changes, "sub.x", ChangeKind::kFieldAdded));
  EXPECT_TRUE(Has(changes, "sub.y", ChangeKind::kFieldAdded));
  EXPECT_TRUE(Has(changes, "sub.y.z", ChangeKind::kFieldAdded));
}

TEST(DiffTest, ArrayContentChanges) {
  auto changes = Diff("{xs: [(Num)*]}", "{xs: [(Num + Str)*]}");
  EXPECT_TRUE(Has(changes, "xs[]", ChangeKind::kKindsBroadened));
}

TEST(DiffTest, ArrayShapeChanges) {
  auto changes = Diff("{xs: [Num, Num]}", "{xs: [(Num)*]}");
  EXPECT_TRUE(Has(changes, "xs[]", ChangeKind::kArrayShapeChanged));
}

TEST(DiffTest, ArrayOfRecordsFieldChanges) {
  auto changes = Diff("{xs: [({a: Num})*]}", "{xs: [({a: Num, b: Str?})*]}");
  EXPECT_TRUE(Has(changes, "xs[].b", ChangeKind::kFieldAdded));
}

TEST(DiffTest, RootKindChange) {
  auto changes = Diff("Num", "Num + {a: Str}");
  EXPECT_TRUE(Has(changes, "<root>", ChangeKind::kKindsBroadened));
  EXPECT_TRUE(Has(changes, "a", ChangeKind::kFieldAdded));
}

TEST(DiffTest, DeterministicOrdering) {
  auto a = Diff("{m: Num, a: Str}", "{m: Str, z: Bool?}");
  auto b = Diff("{m: Num, a: Str}", "{m: Str, z: Bool?}");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].path, b[i].path);
    EXPECT_EQ(a[i].kind, b[i].kind);
  }
  // Paths come out sorted.
  for (size_t i = 1; i < a.size(); ++i) EXPECT_LE(a[i - 1].path, a[i].path);
}

TEST(DiffTest, FusionDriftScenario) {
  // The incremental-inference story end to end: a new batch broadens the
  // schema; the diff pinpoints exactly what drifted.
  auto v1 = json::Parse(R"({"id": 1, "temp": 21.5})").value();
  auto v2 = json::Parse(R"({"id": "x7", "temp": 20.0, "battery": 80})").value();
  types::TypeRef before = inference::InferType(*v1);
  types::TypeRef after = fusion::Fuse(before, inference::InferType(*v2));
  auto changes = DiffSchemas(before, after);
  EXPECT_TRUE(Has(changes, "battery", ChangeKind::kFieldAdded));
  EXPECT_TRUE(Has(changes, "id", ChangeKind::kKindsBroadened));
  // `id` became optional? No — present in both: no optionality change.
  EXPECT_FALSE(Has(changes, "id", ChangeKind::kBecameOptional));
  EXPECT_FALSE(Has(changes, "temp", ChangeKind::kKindsBroadened));
}

TEST(DiffTest, FormatChangesRendering) {
  auto changes = Diff("{a: Num}", "{a: (Num + Str), b: Bool?}");
  std::string text = FormatChanges(changes);
  EXPECT_NE(text.find("~ a: kinds-broadened (Num -> Num + Str)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("+ b: field-added (Bool?)"), std::string::npos) << text;
}

TEST(DiffTest, ChangeKindNamesStable) {
  EXPECT_STREQ(ChangeKindName(ChangeKind::kFieldAdded), "field-added");
  EXPECT_STREQ(ChangeKindName(ChangeKind::kArrayShapeChanged),
               "array-shape-changed");
}

}  // namespace
}  // namespace jsonsi::diff
