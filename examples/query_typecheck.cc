// Static query typechecking against an inferred schema — the Section 1
// use-case: "the correctness of complex queries and programs cannot be
// statically checked" without a schema; with one, a query's data
// requirements are validated before any data is scanned (as [12] does for
// Pig Latin scripts).
//
//   build/examples/query_typecheck [record_count]
//
// Infers the schema of a Twitter-like stream once, then typechecks an
// analytics job's field requirements: correct selections pass, a typo'd
// field is proven dead, a numeric aggregation over a string-bearing field
// is rejected, and a join key that is sometimes absent gets a warning.

#include <cstdlib>
#include <iostream>

#include "core/schema_inferencer.h"
#include "datagen/generator.h"
#include "query/path_expansion.h"
#include "query/requirements.h"
#include "types/type_parser.h"

namespace {

jsonsi::types::TypeRef T(const char* text) {
  return jsonsi::types::ParseType(text).value();
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  auto values =
      jsonsi::datagen::MakeGenerator(jsonsi::datagen::DatasetId::kTwitter, 11)
          ->GenerateMany(count);
  jsonsi::core::Schema schema =
      jsonsi::core::SchemaInferencer().InferFromValues(values);
  std::cout << "schema inferred from " << count << " records ("
            << schema.type->size() << " AST nodes)\n\n";

  // The analytics job:
  //   SELECT user.screen_name, text, entities.hashtags[].text
  //   WHERE retweet_count > 100        -- numeric comparison
  //   GROUP BY user.id                 -- join/group key must always exist
  //   plus two bugs: a typo and a numeric aggregate over a Str-typed field.
  std::vector<jsonsi::query::FieldRequirement> requirements = {
      {"user.screen_name", T("Str"), false},
      {"text", T("Str"), false},
      {"entities.hashtags[].text", T("Str"), false},
      {"retweet_count", T("Num"), false},
      {"user.id", T("Num"), true},          // group key: must be mandatory
      {"user.screen_nane", T("Str"), false},  // typo!
      {"user.url", T("Str"), false},  // actually Null + Str in the stream
  };

  auto results = jsonsi::query::CheckRequirements(schema.type, requirements);
  std::cout << "requirement check\n-----------------\n";
  for (const auto& r : results) {
    std::cout << "  " << r.requirement.pattern << " : "
              << jsonsi::query::RequirementStatusName(r.status);
    if (!r.detail.empty()) std::cout << "  (" << r.detail << ")";
    std::cout << "\n";
  }

  // Wildcard expansion: what would `entities.*` actually touch?
  std::cout << "\nwildcard expansion of entities.*\n--------------------------------\n";
  for (const auto& p :
       jsonsi::query::ExpandPathPattern(*schema.type, "entities.*")) {
    std::cout << "  " << p << "\n";
  }

  std::cout << "\nTakeaway: the dead selection and the type conflict were\n"
               "caught without scanning a single record a second time.\n";
  return 0;
}
