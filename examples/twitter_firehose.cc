// Twitter firehose exploration — the workload the paper's introduction
// motivates: an analyst pointed at a stream of tweets wants to know, without
// reading megabytes of JSON, (a) what fields exist at all, (b) which are
// optional, (c) where the same field carries different types, and (d) how the
// stream mixes different kinds of objects (tweets vs delete notices).
//
//   build/examples/twitter_firehose [record_count]
//
// Uses the synthetic Twitter generator (structurally faithful to the dataset
// described in Section 6.1 of the paper), runs the Map/Reduce pipeline, and
// then interrogates the fused schema programmatically.

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>

#include "core/schema_inferencer.h"
#include "datagen/generator.h"
#include "stats/paths.h"
#include "support/string_util.h"
#include "types/printer.h"

namespace {

// Walks a fused record type and reports fields of interest: optional ones
// and union-typed ones, at any depth.
void ReportIrregularities(const jsonsi::types::Type& type,
                          const std::string& prefix, int* optionals,
                          int* unions) {
  using jsonsi::types::TypeNode;
  switch (type.node()) {
    case TypeNode::kRecord:
      for (const auto& f : type.fields()) {
        std::string path = prefix.empty() ? f.key : prefix + "." + f.key;
        if (f.optional && ++*optionals <= 8) {
          std::cout << "  optional : " << path << "\n";
        }
        if (f.type->is_union() && ++*unions <= 8) {
          std::cout << "  union    : " << path << " : "
                    << jsonsi::types::ToString(*f.type) << "\n";
        }
        ReportIrregularities(*f.type, path, optionals, unions);
      }
      break;
    case TypeNode::kArrayStar:
      ReportIrregularities(*type.body(), prefix + "[]", optionals, unions);
      break;
    case TypeNode::kArrayExact:
      for (const auto& e : type.elements()) {
        ReportIrregularities(*e, prefix + "[]", optionals, unions);
      }
      break;
    case TypeNode::kUnion:
      for (const auto& alt : type.alternatives()) {
        ReportIrregularities(*alt, prefix, optionals, unions);
      }
      break;
    default:
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  std::cout << "Generating " << jsonsi::WithThousands(static_cast<int64_t>(count))
            << " firehose records...\n";
  auto gen =
      jsonsi::datagen::MakeGenerator(jsonsi::datagen::DatasetId::kTwitter, 7);
  auto values = gen->GenerateMany(count);

  jsonsi::core::SchemaInferencer inferencer;
  jsonsi::core::Schema schema = inferencer.InferFromValues(values);

  std::cout << "\nFused stream schema (" << schema.type->size()
            << " AST nodes, from " << schema.stats.distinct_type_count
            << " distinct record types)\n"
            << "------------------------------------------------------\n"
            << schema.ToString(/*pretty=*/true) << "\n\n";

  // (a)+(b)+(c): field inventory with irregularities.
  std::cout << "Irregularities an analyst would want to know up front\n"
            << "------------------------------------------------------\n";
  int optionals = 0, unions = 0;
  ReportIrregularities(*schema.type, "", &optionals, &unions);
  std::cout << "  (" << optionals << " optional fields, " << unions
            << " union-typed positions in total)\n\n";

  // (d): the stream mixes object kinds — visible as top-level optionality:
  // the `delete` field exists only in control records, `text` only in
  // tweets, so both are optional in the fused schema.
  const auto* del = schema.type->FindField("delete");
  const auto* text = schema.type->FindField("text");
  std::cout << "Mixed stream detection\n"
            << "----------------------\n"
            << "  delete: " << (del && del->optional ? "present, optional"
                                                     : "unexpected")
            << "\n  text:   " << (text && text->optional
                                      ? "present, optional"
                                      : "unexpected")
            << "\n  -> the stream interleaves tweet records and delete "
               "notices.\n\n";

  // The completeness guarantee in action: every path of every record is
  // traversable in the schema (Section 1's claim), so path-based tooling
  // (projections, access control, query rewriting) can trust it.
  auto schema_paths = jsonsi::stats::TypePaths(*schema.type);
  size_t missing = 0;
  for (const auto& v : values) {
    for (const auto& p : jsonsi::stats::ValuePaths(*v)) {
      missing += !schema_paths.count(p);
    }
  }
  std::cout << "Schema path coverage check: " << schema_paths.size()
            << " schema paths, " << missing << " record paths missing\n";
  return missing == 0 ? 0 : 1;
}
