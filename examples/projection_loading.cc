// Schema-guided projection loading — the optimization story of Section 1:
// "by identifying the data requirements of a query ... it is possible to
// match these requirements with the schema in order to load in main memory
// only those fragments of the input dataset that are actually needed."
//
//   build/examples/projection_loading [record_count]
//
// A query over NYTimes article metadata needs only headline.main, pub_date
// and keywords[].value. This example:
//   1. infers the full schema once;
//   2. validates the query's required paths against the schema *statically*
//      (a path the schema does not contain can never match any record — the
//      query bug is caught before touching the data);
//   3. loads the dataset twice — whole records vs schema-checked projection —
//      and compares resident tree sizes and serialized bytes.

#include <cstdlib>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "core/schema_inferencer.h"
#include "datagen/generator.h"
#include "json/serializer.h"
#include "json/value.h"
#include "stats/paths.h"
#include "support/string_util.h"

namespace {

using jsonsi::json::Value;
using jsonsi::json::ValueRef;

// Projects `value` onto the paths rooted at `prefix` in `required`:
// keeps a field iff some required path passes through it.
ValueRef Project(const Value& value, const std::string& prefix,
                 const std::set<std::string>& required) {
  auto needed = [&](const std::string& path) {
    // Keep `path` if it is required itself or is a prefix of a requirement.
    auto it = required.lower_bound(path);
    if (it != required.end() &&
        (*it == path || it->rfind(path, 0) == 0)) {
      return true;
    }
    return false;
  };
  switch (value.kind()) {
    case jsonsi::json::ValueKind::kRecord: {
      std::vector<jsonsi::json::Field> kept;
      for (const auto& f : value.fields()) {
        std::string path = prefix.empty() ? f.key : prefix + "." + f.key;
        if (!needed(path)) continue;
        kept.push_back({f.key, Project(*f.value, path, required)});
      }
      return Value::RecordUnchecked(std::move(kept));
    }
    case jsonsi::json::ValueKind::kArray: {
      std::vector<ValueRef> kept;
      kept.reserve(value.elements().size());
      for (const auto& e : value.elements()) {
        kept.push_back(Project(*e, prefix + "[]", required));
      }
      return Value::Array(std::move(kept));
    }
    default:
      return value.is_null()       ? Value::Null()
             : value.is_bool()     ? Value::Bool(value.bool_value())
             : value.is_num()      ? Value::Num(value.num_value())
                                   : Value::Str(value.str_value());
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;

  auto gen =
      jsonsi::datagen::MakeGenerator(jsonsi::datagen::DatasetId::kNYTimes, 5);
  auto values = gen->GenerateMany(count);

  // 1. One-time schema inference.
  jsonsi::core::Schema schema =
      jsonsi::core::SchemaInferencer().InferFromValues(values);
  auto schema_paths = jsonsi::stats::TypePaths(*schema.type);

  // 2. Static validation of the query's data requirements.
  const std::set<std::string> query_paths = {
      "headline", "headline.main", "pub_date", "keywords", "keywords[]",
      "keywords[].value"};
  const std::set<std::string> buggy_paths = {"headline.titel"};  // typo!
  std::cout << "Static requirement check against the schema\n"
            << "-------------------------------------------\n";
  for (const auto& p : query_paths) {
    std::cout << "  " << p << " : "
              << (schema_paths.count(p) ? "ok" : "NOT IN SCHEMA") << "\n";
  }
  for (const auto& p : buggy_paths) {
    std::cout << "  " << p << " : "
              << (schema_paths.count(p)
                      ? "ok"
                      : "NOT IN SCHEMA -> query can never match; fix the "
                        "query, no scan needed")
              << "\n";
  }

  // 3. Loading with vs without projection.
  size_t full_nodes = 0, full_bytes = 0, proj_nodes = 0, proj_bytes = 0;
  std::vector<ValueRef> projected;
  projected.reserve(values.size());
  for (const auto& v : values) {
    full_nodes += v->TreeSize();
    full_bytes += jsonsi::json::SerializedSize(*v);
    ValueRef p = Project(*v, "", query_paths);
    proj_nodes += p->TreeSize();
    proj_bytes += jsonsi::json::SerializedSize(*p);
    projected.push_back(std::move(p));
  }
  std::cout << "\nMain-memory footprint (" << count << " records)\n"
            << "-----------------------------------------\n"
            << "  full records : " << jsonsi::WithThousands(
                   static_cast<int64_t>(full_nodes)) << " nodes, "
            << jsonsi::HumanBytes(full_bytes) << "\n"
            << "  projected    : " << jsonsi::WithThousands(
                   static_cast<int64_t>(proj_nodes)) << " nodes, "
            << jsonsi::HumanBytes(proj_bytes) << "\n"
            << "  reduction    : "
            << jsonsi::FormatFixed(
                   100.0 * (1.0 - static_cast<double>(proj_bytes) /
                                      static_cast<double>(full_bytes)), 1)
            << "% fewer bytes resident\n\n";

  // The projection still answers the query: show one projected record.
  std::cout << "Example projected record:\n"
            << jsonsi::json::ToPrettyJson(*projected.front()) << "\n";
  return 0;
}
