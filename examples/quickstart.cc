// Quickstart: infer a succinct, precise schema from a handful of
// heterogeneous JSON records — the 60-second tour of the public API.
//
//   build/examples/quickstart
//
// Walks through: (1) one-call inference over JSON-Lines text, (2) what the
// inferred schema says (mandatory vs optional fields, union types, starred
// arrays), (3) validating a new record against the schema, and (4) the
// statistics the pipeline gathers.

#include <iostream>

#include "core/schema_inferencer.h"
#include "json/parser.h"
#include "support/string_util.h"
#include "types/membership.h"

int main() {
  // A mini "API log" with the usual real-world irregularities: a field that
  // is sometimes Num and sometimes Str, an optional field, a mixed-content
  // array, and a null-or-string field.
  const char* kRecords = R"JSONL(
{"user": "ada", "id": 1, "tags": ["admin", "ops"], "email": null}
{"user": "bob", "id": "2b", "tags": [], "email": "bob@example.com"}
{"user": "eve", "id": 3, "tags": ["dev", 7], "beta": true, "email": null}
)JSONL";

  jsonsi::core::SchemaInferencer inferencer;
  auto result = inferencer.InferFromJsonLines(kRecords);
  if (!result.ok()) {
    std::cerr << "inference failed: " << result.status() << "\n";
    return 1;
  }
  const jsonsi::core::Schema& schema = result.value();

  std::cout << "Inferred schema\n"
            << "---------------\n"
            << schema.ToString(/*pretty=*/true) << "\n\n";

  std::cout << "How to read it\n"
            << "--------------\n"
            << "* `id: (Num + Str)`  - the field is mandatory but its type\n"
            << "  varies across records (a union type keeps both).\n"
            << "* `beta: Bool?`      - '?' marks a field some records omit.\n"
            << "* `tags: [(Num + Str)*]` - arrays fuse into a starred body\n"
            << "  covering every element type ever seen.\n\n";

  // The schema is a machine-checkable contract: validate a new record.
  auto incoming = jsonsi::json::Parse(
      R"({"user": "kim", "id": 9, "tags": ["new"], "email": null})");
  std::cout << "New record matches schema: "
            << (jsonsi::types::Matches(*incoming.value(), *schema.type)
                    ? "yes"
                    : "no")
            << "\n";
  auto malformed = jsonsi::json::Parse(
      R"({"user": 42, "id": 9, "tags": [], "email": null})");
  std::cout << "Record with user:42 matches: "
            << (jsonsi::types::Matches(*malformed.value(), *schema.type)
                    ? "yes"
                    : "no")
            << "\n\n";

  const auto& s = schema.stats;
  std::cout << "Pipeline statistics\n"
            << "-------------------\n"
            << "records processed : " << s.record_count << "\n"
            << "distinct types    : " << s.distinct_type_count << "\n"
            << "avg inferred size : " << jsonsi::FormatFixed(s.avg_type_size, 1)
            << " AST nodes\n"
            << "fused schema size : " << schema.type->size()
            << " AST nodes\n";
  return 0;
}
