// Schema drift monitor — the operational payoff of the paper's design.
//
//   build/examples/schema_drift_monitor
//
// A service consumes a JSON feed whose producer evolves over time. Because
// fusion is associative, the consumer can maintain an exact running schema
// per source at batch granularity and get, for free:
//   * versioned schema history (repository/schema_repository.h),
//   * precise change reports whenever a batch drifts — new fields, type
//     broadening, optionality flips (diff/schema_diff.h),
//   * per-field statistics and provenance to judge severity
//     (annotate/counted_schema.h),
//   * machine-checkable contracts for downstream validators
//     (export/json_schema.h).
//
// The scenario: a payments API that rolls out two producer changes; the
// monitor flags each one, pinpoints the paths, and shows which record
// introduced the drift.

#include <iostream>
#include <vector>

#include "annotate/counted_schema.h"
#include "diff/schema_diff.h"
#include "export/json_schema.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "repository/schema_repository.h"
#include "fusion/tree_fuser.h"

namespace {

using jsonsi::json::ValueRef;

std::vector<ValueRef> Batch(std::initializer_list<const char*> docs) {
  std::vector<ValueRef> out;
  for (const char* doc : docs) out.push_back(jsonsi::json::Parse(doc).value());
  return out;
}

jsonsi::types::TypeRef SchemaOf(const std::vector<ValueRef>& batch) {
  jsonsi::fusion::TreeFuser fuser;
  for (const auto& v : batch) fuser.Add(jsonsi::inference::InferType(*v));
  return fuser.Finish();
}

}  // namespace

int main() {
  jsonsi::repository::SchemaRepository repo;
  jsonsi::annotate::SchemaProfiler profiler;
  uint64_t ordinal = 0;

  auto ingest = [&](const char* note, std::vector<ValueRef> batch) {
    for (const auto& v : batch) profiler.Observe(*v, ordinal++);
    const auto* before = repo.Current("payments");
    uint64_t version_before = before ? before->version : 0;
    auto st = repo.RegisterBatch("payments", SchemaOf(batch), batch.size(),
                                 note);
    if (!st.ok()) {
      std::cerr << "register failed: " << st << "\n";
      return;
    }
    const auto* current = repo.Current("payments");
    std::cout << "batch '" << note << "' (" << batch.size() << " records): ";
    if (current->version == version_before) {
      std::cout << "no drift (schema v" << current->version << ")\n";
      return;
    }
    std::cout << "DRIFT -> schema v" << current->version << "\n"
              << jsonsi::diff::FormatChanges(current->changes);
  };

  // Week 1: steady state.
  ingest("week1", Batch({
      R"({"id": "p-1", "amount": 120.5, "currency": "EUR"})",
      R"({"id": "p-2", "amount": 8.0, "currency": "USD"})",
      R"({"id": "p-3", "amount": 33.3, "currency": "EUR"})",
  }));
  // Week 2: same structure — the monitor stays quiet.
  ingest("week2", Batch({
      R"({"id": "p-4", "amount": 5.75, "currency": "GBP"})",
  }));
  // Week 3: producer adds a refund flag and stringifies amounts sometimes.
  ingest("week3-rollout", Batch({
      R"({"id": "p-5", "amount": "19.99", "currency": "EUR", "refund": false})",
      R"({"id": "p-6", "amount": 7.25, "currency": "EUR", "refund": true})",
  }));
  // Week 4: a partial outage nulls currencies.
  ingest("week4-incident", Batch({
      R"({"id": "p-7", "amount": 12.0, "currency": null})",
  }));

  std::cout << "\nVersion history:\n";
  for (const auto& v : *repo.History("payments")) {
    std::cout << "  v" << v.version << "  records<=" << v.cumulative_records
              << "  note=" << v.note << "  changes=" << v.changes.size()
              << "\n";
  }

  std::cout << "\nAnnotated schema (who is affected, and since when):\n  "
            << profiler.ToString(/*show_value_stats=*/false) << "\n";

  std::cout << "\nContract for downstream validators (JSON Schema):\n"
            << jsonsi::exporter::ToJsonSchemaText(
                   *repo.Current("payments")->schema)
            << "\n";
  return 0;
}
