// Incremental schema maintenance — the associativity use-case of Section 1.
//
//   build/examples/incremental_inference
//
// A JSON source is dynamic: batches keep arriving, sometimes with structure
// never seen before. Because Fuse is associative and commutative, the schema
// of (old data + new batch) is exactly Fuse(old schema, new batch's schema) —
// no reprocessing of historical data, ever. This example simulates a feed
// that drifts over time (new fields appear, a field changes type), maintains
// the schema batch by batch, and verifies at the end that the incrementally
// maintained schema is bit-identical to a from-scratch batch inference over
// everything. It also demonstrates the "re-infer one updated partition"
// maintenance mode.

#include <iostream>
#include <vector>

#include "core/schema_inferencer.h"
#include "datagen/generator.h"
#include "json/parser.h"
#include "support/string_util.h"
#include "support/timer.h"

namespace {

using jsonsi::core::Schema;
using jsonsi::core::SchemaInferencer;

std::vector<jsonsi::json::ValueRef> Batch(std::initializer_list<const char*> docs) {
  std::vector<jsonsi::json::ValueRef> out;
  for (const char* doc : docs) {
    out.push_back(jsonsi::json::Parse(doc).value());
  }
  return out;
}

}  // namespace

int main() {
  SchemaInferencer inferencer;

  // Day 1: a well-behaved sensor feed.
  auto day1 = Batch({
      R"({"sensor": "t-01", "celsius": 21.5, "ts": 1700000000})",
      R"({"sensor": "t-02", "celsius": 19.0, "ts": 1700000060})",
  });
  // Day 2: firmware update starts reporting battery level.
  auto day2 = Batch({
      R"({"sensor": "t-01", "celsius": 21.9, "ts": 1700086400, "battery": 87})",
  });
  // Day 3: a buggy gateway stringifies the temperature and nulls timestamps.
  auto day3 = Batch({
      R"({"sensor": "t-03", "celsius": "20.4", "ts": null})",
      R"({"sensor": "t-01", "celsius": 22.1, "ts": 1700172800, "battery": 85})",
  });

  Schema schema = inferencer.InferFromValues(day1);
  std::cout << "after day 1: " << schema.ToString() << "\n";

  schema = SchemaInferencer::Merge(schema, inferencer.InferFromValues(day2));
  std::cout << "after day 2: " << schema.ToString() << "\n";

  schema = SchemaInferencer::Merge(schema, inferencer.InferFromValues(day3));
  std::cout << "after day 3: " << schema.ToString() << "\n\n";

  // The drift is now documented in the schema itself: battery is optional
  // (appeared on day 2), celsius is Num + Str (the day-3 bug is visible!),
  // ts is Num + Null. A schema-drift monitor would alert on exactly this.

  // Verify incremental == batch (the guarantee associativity buys).
  std::vector<jsonsi::json::ValueRef> everything;
  for (const auto& batch : {day1, day2, day3}) {
    everything.insert(everything.end(), batch.begin(), batch.end());
  }
  Schema batch_schema = inferencer.InferFromValues(everything);
  std::cout << "incremental == batch inference: "
            << (schema.type->Equals(*batch_schema.type) ? "yes" : "NO")
            << "\n\n";

  // Partition-maintenance mode: a large dataset is kept as P partitions with
  // one schema each; when one partition is rewritten, only it is re-inferred
  // and the partial schemas are re-fused (fast: partials are tiny).
  auto gen =
      jsonsi::datagen::MakeGenerator(jsonsi::datagen::DatasetId::kGitHub, 3);
  const size_t kPartitions = 4, kPerPartition = 2500;
  std::vector<Schema> partials(kPartitions);
  for (size_t p = 0; p < kPartitions; ++p) {
    partials[p] =
        inferencer.InferFromValues(gen->GenerateMany(kPerPartition, p * kPerPartition));
  }
  auto refuse_all = [&] {
    Schema acc = partials[0];
    for (size_t p = 1; p < kPartitions; ++p) {
      acc = SchemaInferencer::Merge(acc, partials[p]);
    }
    return acc;
  };
  Schema global = refuse_all();
  std::cout << "partitioned GitHub dataset: " << kPartitions << " x "
            << kPerPartition << " records, global schema has "
            << global.type->size() << " AST nodes\n";

  // Partition 2 is rewritten (say, a compaction rewrote those files).
  jsonsi::Stopwatch watch;
  partials[2] = inferencer.InferFromValues(
      gen->GenerateMany(kPerPartition, 10 * kPerPartition));
  Schema updated = refuse_all();
  std::cout << "partition 2 re-inferred and re-fused in "
            << jsonsi::FormatFixed(watch.ElapsedMillis(), 1)
            << " ms (vs re-reading all " << kPartitions * kPerPartition
            << " records)\n"
            << "updated schema: " << updated.type->size() << " AST nodes\n";
  return 0;
}
